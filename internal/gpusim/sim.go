package gpusim

import (
	"fmt"
	"math"
)

// defaultInstrPerIter is the warp-instruction cost of one spGEMM inner-loop
// iteration (index load, value load, FMA, address arithmetic, store) when a
// block profile does not override it.
const defaultInstrPerIter = 10

// barrierCost is the cycle cost of one __syncthreads within a gathered
// block partition.
const barrierCost = 40

// timeEps separates "now" from genuinely later events when draining
// simultaneous completions.
const timeEps = 0.01

// Simulator executes kernels on a simulated device. The zero value is not
// usable; construct with New.
type Simulator struct {
	cfg Config
}

// New returns a simulator for the given device configuration.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{cfg: cfg}, nil
}

// Config returns the device configuration the simulator was built with.
func (s *Simulator) Config() Config { return s.cfg }

// classCursor walks the grid, handing out chunks of identical blocks.
type classCursor struct {
	blocks    []BlockWork
	classIdx  int
	remaining int
	chunkOf   []int
}

func newClassCursor(k *Kernel, chunkOf []int) *classCursor {
	c := &classCursor{blocks: k.Blocks, chunkOf: chunkOf}
	if len(k.Blocks) > 0 {
		c.remaining = k.Blocks[0].norm()
	}
	return c
}

func (c *classCursor) empty() bool {
	for c.classIdx < len(c.blocks) && c.remaining == 0 {
		c.classIdx++
		if c.classIdx < len(c.blocks) {
			c.remaining = c.blocks[c.classIdx].norm()
		}
	}
	return c.classIdx >= len(c.blocks)
}

// peek returns the next block profile without consuming it.
func (c *classCursor) peek() *BlockWork {
	return &c.blocks[c.classIdx]
}

// take consumes up to the class chunk size and returns how many blocks were
// taken.
func (c *classCursor) take() int {
	n := c.chunkOf[c.classIdx]
	if n > c.remaining {
		n = c.remaining
	}
	c.remaining -= n
	return n
}

// gpuState bundles the device-wide gauges shared by all SMs.
type gpuState struct {
	accumBytes float64 // resident merge-accumulator footprint
	segs       *segmentCache
}

// runningBlock is one resident dispatch (a block, or a chunk of identical
// blocks executing back-to-back in one slot). Its memory demand drains
// under processor-sharing bandwidth allocation; everything else (dispatch
// overhead, issue, critical path, atomics) is a fixed floor computed at
// placement.
type runningBlock struct {
	block *BlockWork
	chunk int
	sm    int
	// placed is the dispatch time; fixedEnd is when the non-memory work
	// completes.
	placed   float64
	fixedEnd float64
	// remBytes is the remaining memory demand; mlp and pipe cap its
	// bandwidth; bw is the current processor-sharing allocation.
	remBytes float64
	mlp      float64
	pipe     float64
	bw       float64
	// issueFloor is recorded for the stall decomposition at completion.
	issueFloor float64
}

// finishEstimate projects the block's completion under its current rate.
func (r *runningBlock) finishEstimate(now float64) float64 {
	f := r.fixedEnd
	if r.remBytes > 0 {
		if r.bw <= 0 {
			return math.Inf(1)
		}
		if m := now + r.remBytes/r.bw; m > f {
			f = m
		}
	}
	return f
}

// Run executes one kernel and returns its statistics. The grid is
// dispatched FIFO to the SMs under occupancy limits; memory bandwidth is
// allocated by processor sharing across all resident blocks and re-divided
// whenever the resident population changes. An error is returned if any
// block can never be scheduled (e.g. its shared memory exceeds the
// per-block limit).
func (s *Simulator) Run(k *Kernel) (*KernelResult, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if s.cfg.Paranoid || ParanoidEnv() {
		if err := k.CheckDeep(s.cfg.WarpSize); err != nil {
			return nil, err
		}
	}
	cfg := &s.cfg
	for i := range k.Blocks {
		if occ := cfg.OccupancyOf(&k.Blocks[i]); occ.BlocksPerSM == 0 {
			return nil, fmt.Errorf("gpusim: kernel %q block class %d (threads=%d smem=%d) cannot be scheduled on %s",
				k.Name, i, k.Blocks[i].Threads, k.Blocks[i].SharedMem, cfg.Name)
		}
	}

	res := newKernelResult(k.Name, k.Phase, cfg)
	sms := make([]smState, cfg.NumSMs)
	for i := range sms {
		sms[i].id = i
	}
	gpu := &gpuState{segs: newSegmentCache(cfg.L2Size)}
	cursor := newClassCursor(k, s.chunkSizes(k))

	now := float64(cfg.KernelOverheadCycles)
	var running []*runningBlock

	fill := func() {
		for {
			placed := false
			for i := range sms {
				if cursor.empty() {
					return
				}
				b := cursor.peek()
				if !sms[i].fits(cfg, b) {
					continue
				}
				chunk := cursor.take()
				r := s.place(b, &sms[i], gpu, chunk, now, res)
				sms[i].place(cfg, b)
				gpu.accumBytes += float64(b.AccumBytes)
				running = append(running, r)
				placed = true
			}
			if !placed {
				return
			}
		}
	}

	// reallocate divides the memory pipes among the blocks with remaining
	// demand: every block gets its MLP-capped bandwidth, scaled down
	// uniformly when the aggregate exceeds the (hit-mix weighted) pipe.
	reallocate := func() {
		var mlpSum, pipeWeighted float64
		for _, r := range running {
			if r.remBytes > 0 {
				mlpSum += r.mlp
				pipeWeighted += r.mlp * r.pipe
			}
		}
		scale := 1.0
		if mlpSum > 0 {
			pipeEff := pipeWeighted / mlpSum
			if mlpSum > pipeEff {
				scale = pipeEff / mlpSum
			}
		}
		for _, r := range running {
			if r.remBytes > 0 {
				r.bw = r.mlp * scale
			}
		}
	}

	fill()
	for len(running) > 0 {
		reallocate()
		// Next completion time under current rates.
		next := math.Inf(1)
		for _, r := range running {
			if f := r.finishEstimate(now); f < next {
				next = f
			}
		}
		if math.IsInf(next, 1) {
			return nil, fmt.Errorf("gpusim: kernel %q stalled with no progress", k.Name)
		}
		// Drain memory demand up to the completion instant.
		elapsed := next - now
		for _, r := range running {
			if r.remBytes > 0 {
				r.remBytes -= r.bw * elapsed
				if r.remBytes < 0.5 {
					r.remBytes = 0
				}
			}
		}
		// Time-weighted resident warps (achieved occupancy) and per-SM
		// wall-clock busy time (the paper's per-SM execution time).
		for i := range sms {
			res.warpTime += float64(sms[i].warps) * elapsed
			if sms[i].blocks > 0 {
				sms[i].busyCycles += elapsed
			}
		}
		now = next
		// Retire every block that is done at this instant.
		keep := running[:0]
		for _, r := range running {
			if r.remBytes <= 0 && r.fixedEnd <= now+timeEps {
				s.retire(r, &sms[r.sm], gpu, now, res)
			} else {
				keep = append(keep, r)
			}
		}
		running = keep
		fill()
	}
	if !cursor.empty() {
		return nil, fmt.Errorf("gpusim: kernel %q deadlocked with blocks remaining", k.Name)
	}

	res.Cycles = now
	for i := range sms {
		res.SMBusyCycles[i] = sms[i].busyCycles
	}
	res.finalize(cfg)
	return res, nil
}

// chunkSizes picks, per class, how many identical blocks one dispatch may
// fuse, bounding event counts while leaving enough dispatches to keep every
// SM slot busy.
func (s *Simulator) chunkSizes(k *Kernel) []int {
	sizes := make([]int, len(k.Blocks))
	// Enough chunks that every block slot on the device turns over many
	// times, so chunking cannot distort load balance measurably.
	target := s.cfg.NumSMs * s.cfg.MaxBlocksPerSM * 32
	for i := range k.Blocks {
		n := k.Blocks[i].norm()
		c := n / target
		if c < 1 {
			c = 1
		}
		if s.cfg.MaxChunk > 0 && c > s.cfg.MaxChunk {
			c = s.cfg.MaxChunk
		}
		sizes[i] = c
	}
	return sizes
}

// mlpBandwidth is the peak bytes/cycle one block can pull given its warps'
// memory-level parallelism and the effective access latency.
func (s *Simulator) mlpBandwidth(b *BlockWork, latency float64) float64 {
	sectors := float64(b.effWarps(s.cfg.WarpSize) * s.cfg.OutstandingPerWarp)
	return sectors * 32 / latency
}

// place prices the fixed (non-memory) portion of a dispatch, registers its
// traffic statistics, and returns its running state.
func (s *Simulator) place(b *BlockWork, sm *smState, gpu *gpuState, chunk int, now float64, res *KernelResult) *runningBlock {
	cfg := &s.cfg
	ipi := float64(b.InstrPerIter)
	if ipi == 0 {
		ipi = defaultInstrPerIter
	}
	warps := float64(b.warps(cfg.WarpSize))

	// --- L2 reuse ---------------------------------------------------
	// Streaming reads: a shared segment hits if some co-recent block
	// installed it; within a chunk, every execution after the first hits.
	readBytes := b.ReadBytesPerIter * float64(b.SumThreadIters)
	writeBytes := b.WriteBytesPerIter * float64(b.SumThreadIters)
	accumBytes := b.AccumTrafficPerIter * float64(b.SumThreadIters)
	readHit := 0.0
	if b.Segment != NoSegment && readBytes > 0 {
		hit := gpu.segs.touch(b.Segment, b.SegmentBytes)
		readHit = float64(chunk-1) / float64(chunk)
		if hit {
			readHit = 1
		}
	}
	// Accumulator read-modify-write traffic: its hit ratio decays as the
	// resident accumulator working set overflows L2 (the B-Limiting
	// lever). Writes of accumulator-carrying blocks follow the same set.
	accumHit := 0.0
	if b.AccumBytes > 0 {
		ws := gpu.accumBytes + float64(b.AccumBytes)
		accumHit = capacityHit(float64(cfg.L2Size), ws)
	}
	totalBytes := readBytes + writeBytes + accumBytes
	var hit float64
	if totalBytes > 0 {
		hitBytes := readBytes*readHit + accumBytes*accumHit
		if b.AccumBytes > 0 {
			hitBytes += writeBytes * accumHit
		}
		hit = hitBytes / totalBytes
	}
	latency := hit*float64(cfg.L2Latency) + (1-hit)*float64(cfg.DRAMLatency)

	// --- issue (lock-step) time --------------------------------------
	// The SM's schedulers are shared among all resident warps, so this
	// block's issue rate is its warp share of the issue width.
	issueShare := warps / float64(sm.warps+int(warps))
	issueCycles := float64(b.SumWarpIters) * ipi / (float64(cfg.SchedulersPerSM) * issueShare)

	// --- critical path -----------------------------------------------
	// The slowest warp pipelines OutstandingPerWarp requests over
	// StreamFactor consecutive elements per line, so each iteration costs
	// at least latency/(outstanding·stream) cycles unless compute already
	// covers that.
	perIter := math.Max(ipi, latency/float64(cfg.OutstandingPerWarp*cfg.StreamFactor))
	critCycles := float64(b.MaxWarpIters) * perIter
	if b.Partitions > 1 {
		critCycles += float64(b.Partitions-1) * barrierCost
	}

	// --- atomics -------------------------------------------------------
	// Warps pipeline their atomics; contention (a thrashing accumulator)
	// multiplies the per-op cost.
	atomCycles := 0.0
	if b.AtomicsPerIter > 0 {
		conflict := 1 + 3*(1-accumHit)
		atomCycles = float64(b.SumThreadIters) * b.AtomicsPerIter * cfg.AtomicCost * conflict /
			float64(b.effWarps(cfg.WarpSize))
	}

	fixed := float64(cfg.BlockOverhead) + math.Max(issueCycles, math.Max(critCycles, atomCycles))
	fchunk := float64(chunk)

	r := &runningBlock{
		block:      b,
		chunk:      chunk,
		sm:         sm.id,
		placed:     now,
		fixedEnd:   now + fixed*fchunk,
		remBytes:   totalBytes * fchunk,
		mlp:        s.mlpBandwidth(b, latency),
		pipe:       hit*cfg.L2Bandwidth + (1-hit)*cfg.DRAMBandwidth,
		issueFloor: (float64(cfg.BlockOverhead) + issueCycles) * fchunk,
	}

	// --- statistics ---------------------------------------------------
	res.BlocksExecuted += int64(chunk)
	res.L2ReadBytes += (readBytes + accumBytes/2) * fchunk
	res.L2WriteBytes += (writeBytes + accumBytes/2) * fchunk
	res.DRAMBytes += totalBytes * (1 - hit) * fchunk
	res.IssueCycles += issueCycles * fchunk
	res.ThreadIters += b.SumThreadIters * int64(chunk)
	return r
}

// retire releases a completed dispatch and records its duration-dependent
// statistics.
func (s *Simulator) retire(r *runningBlock, sm *smState, gpu *gpuState, now float64, res *KernelResult) {
	sm.release(&s.cfg, r.block)
	gpu.accumBytes -= float64(r.block.AccumBytes)
	dur := now - r.placed
	if s.cfg.TraceEvents > 0 {
		if len(res.Trace) < s.cfg.TraceEvents {
			res.Trace = append(res.Trace, TraceEvent{
				SM: r.sm, Start: r.placed, End: now, Label: r.block.Label, Blocks: r.chunk,
			})
		} else {
			res.TraceDropped++
		}
	}
	memStall := dur - r.issueFloor
	if memStall < 0 {
		memStall = 0
	}
	res.MemStallCycles += memStall
	lockstepIdle := 1 - float64(r.block.EffThreads)/float64(r.block.Threads)
	res.SyncStallCycles += dur * lockstepIdle
	if r.block.Label != "" {
		lb := res.labels[r.block.Label]
		if lb.Blocks == 0 || r.placed < lb.start {
			lb.start = r.placed
		}
		if now > lb.end {
			lb.end = now
		}
		lb.Blocks += int64(r.chunk)
		lb.Cycles += dur
		lb.Span = lb.end - lb.start
		lb.Bytes += (r.block.ReadBytesPerIter + r.block.WriteBytesPerIter + r.block.AccumTrafficPerIter) *
			float64(r.block.SumThreadIters) * float64(r.chunk)
		res.labels[r.block.Label] = lb
	}
}

// capacityHit maps a working set size to an L2 hit ratio: full hits while
// the set fits, then a smooth 1/x decay as it overflows.
func capacityHit(capacity, workingSet float64) float64 {
	if workingSet <= 0 {
		return 1
	}
	// Real caches lose effectiveness before 100% utilization; model the
	// usable fraction as 80%.
	usable := 0.8 * capacity
	if workingSet <= usable {
		return 1
	}
	return usable / workingSet
}
