package gpusim

import "container/list"

// segmentCache is a coarse L2 reuse model: an LRU over named data segments
// (e.g. "dominator column 17") with byte-granular capacity. A block that
// touches a segment already resident reads it at L2 cost; the first toucher
// pays DRAM cost and installs it. This captures the mechanism behind
// B-Splitting's cache gain: split sub-blocks share their parent vector, so
// all but the first find it in L2.
type segmentCache struct {
	capacity int
	used     int
	lru      *list.List            // front = most recent; values are segEntry
	index    map[int]*list.Element // segment id -> element
}

type segEntry struct {
	id   int
	size int
}

func newSegmentCache(capacity int) *segmentCache {
	return &segmentCache{
		capacity: capacity,
		lru:      list.New(),
		index:    make(map[int]*list.Element),
	}
}

// touch records an access to segment id of the given size and reports
// whether it hit. Segments larger than the cache never hit and are not
// installed. A size change on an existing segment re-accounts it.
func (c *segmentCache) touch(id, size int) bool {
	if id == NoSegment || size <= 0 {
		return false
	}
	if size > c.capacity {
		return false
	}
	if el, ok := c.index[id]; ok {
		ent := el.Value.(segEntry)
		c.lru.MoveToFront(el)
		if ent.size != size {
			c.used += size - ent.size
			el.Value = segEntry{id, size}
			c.evict()
		}
		return true
	}
	c.used += size
	c.index[id] = c.lru.PushFront(segEntry{id, size})
	c.evict()
	return false
}

// evict trims least-recently-used segments until usage fits capacity.
func (c *segmentCache) evict() {
	for c.used > c.capacity {
		back := c.lru.Back()
		if back == nil {
			return
		}
		ent := back.Value.(segEntry)
		c.lru.Remove(back)
		delete(c.index, ent.id)
		c.used -= ent.size
	}
}

// len returns the number of resident segments (used by tests).
func (c *segmentCache) len() int { return c.lru.Len() }
