package gpusim

import (
	"fmt"
	"sort"
)

// LabelStats aggregates the blocks carrying one Label.
type LabelStats struct {
	Blocks int64
	// Cycles is the summed SM-occupancy time of the label's blocks;
	// Span is the wall-clock window from the first dispatch to the last
	// completion — the "execution time of the dominator blocks" metric of
	// the paper's Figure 11.
	Cycles float64
	Span   float64
	Bytes  float64

	start, end float64
}

// KernelResult holds the measured statistics of one simulated kernel.
type KernelResult struct {
	Name  string
	Phase Phase
	// Cycles is the kernel makespan including launch overhead; Seconds is
	// the wall-clock equivalent on the simulated device.
	Cycles  float64
	Seconds float64
	// SMBusyCycles is the occupied time of each SM — the quantity behind
	// the paper's per-SM execution time plots and the LBI metric.
	SMBusyCycles []float64
	// LBI is the load balancing index of equation (3): mean SM busy time
	// over max SM busy time, in (0, 1].
	LBI float64
	// Traffic: all global accesses flow through L2, so L2Read/WriteBytes
	// are total read/write traffic; DRAMBytes is the miss portion.
	L2ReadBytes  float64
	L2WriteBytes float64
	DRAMBytes    float64
	// L2ReadThroughput / L2WriteThroughput are in bytes per second.
	L2ReadThroughput  float64
	L2WriteThroughput float64
	// Stall decomposition (approximate, cycle-weighted): IssueCycles is
	// useful issue time, MemStallCycles is unhidden memory time,
	// SyncStallCycles is lock-step idle-lane time — the paper's "sync
	// stall" population that B-Gathering removes.
	IssueCycles     float64
	MemStallCycles  float64
	SyncStallCycles float64
	// SyncStallPct is SyncStallCycles over all stall+issue cycles ×100.
	SyncStallPct float64
	// BlocksExecuted counts thread blocks; ThreadIters counts effective
	// thread iterations (the real work).
	BlocksExecuted int64
	ThreadIters    int64
	// AvgResidentWarps is the time-weighted mean resident warp count per
	// SM; Occupancy normalizes it by the device's warp capacity — the
	// "achieved occupancy" metric of the CUDA profiler.
	AvgResidentWarps float64
	Occupancy        float64
	// Trace holds per-dispatch intervals when Config.TraceEvents > 0;
	// TraceDropped counts events beyond the cap.
	Trace        []TraceEvent
	TraceDropped int64

	labels   map[string]LabelStats
	warpTime float64
}

func newKernelResult(name string, phase Phase, cfg *Config) *KernelResult {
	return &KernelResult{
		Name:         name,
		Phase:        phase,
		SMBusyCycles: make([]float64, cfg.NumSMs),
		labels:       make(map[string]LabelStats),
	}
}

// finalize fills the derived fields once simulation completes.
func (r *KernelResult) finalize(cfg *Config) {
	r.Seconds = cfg.Seconds(r.Cycles)
	r.LBI = lbi(r.SMBusyCycles)
	if r.Seconds > 0 {
		r.L2ReadThroughput = r.L2ReadBytes / r.Seconds
		r.L2WriteThroughput = r.L2WriteBytes / r.Seconds
	}
	denom := r.IssueCycles + r.MemStallCycles + r.SyncStallCycles
	if denom > 0 {
		r.SyncStallPct = 100 * r.SyncStallCycles / denom
	}
	if span := r.Cycles - float64(cfg.KernelOverheadCycles); span > 0 {
		r.AvgResidentWarps = r.warpTime / (span * float64(cfg.NumSMs))
		if capWarps := float64(cfg.MaxThreadsPerSM / cfg.WarpSize); capWarps > 0 {
			r.Occupancy = r.AvgResidentWarps / capWarps
		}
	}
}

// Label returns the aggregate statistics of blocks tagged with label.
func (r *KernelResult) Label(label string) (LabelStats, bool) {
	s, ok := r.labels[label]
	return s, ok
}

// Labels returns the tagged classes present in the kernel, sorted.
func (r *KernelResult) Labels() []string {
	out := make([]string, 0, len(r.labels))
	for k := range r.labels {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// lbi implements the paper's load balancing index (equation 3): the mean
// over SMs of busy time normalized by the busiest SM.
func lbi(busy []float64) float64 {
	var max, sum float64
	for _, b := range busy {
		sum += b
		if b > max {
			max = b
		}
	}
	if max == 0 {
		return 1
	}
	return sum / (float64(len(busy)) * max)
}

// Report aggregates the kernels of one spGEMM run (preprocessing,
// expansion, merge) on one device.
type Report struct {
	Device  string
	Kernels []*KernelResult
	// HostSeconds is CPU-side preprocessing time (B-Splitting runs on the
	// host in the paper); it is included in TotalSeconds, matching the
	// paper's measurement methodology (all overhead except transfer).
	HostSeconds float64
}

// TotalSeconds is the end-to-end time the paper reports: all kernels plus
// host preprocessing, excluding host-device transfer.
func (r *Report) TotalSeconds() float64 {
	t := r.HostSeconds
	for _, k := range r.Kernels {
		t += k.Seconds
	}
	return t
}

// PhaseSeconds sums the time of kernels in the given phase.
func (r *Report) PhaseSeconds(p Phase) float64 {
	var t float64
	for _, k := range r.Kernels {
		if k.Phase == p {
			t += k.Seconds
		}
	}
	return t
}

// Kernel returns the first kernel result with the given name, or nil.
func (r *Report) Kernel(name string) *KernelResult {
	for _, k := range r.Kernels {
		if k.Name == name {
			return k
		}
	}
	return nil
}

// GFLOPS converts a useful-work count (multiply-add pairs) and the report's
// total time into the paper's throughput metric 2·flops/time/1e9.
func (r *Report) GFLOPS(multiplyAdds int64) float64 {
	t := r.TotalSeconds()
	if t <= 0 {
		return 0
	}
	return 2 * float64(multiplyAdds) / t / 1e9
}

// String summarizes the report for logs.
func (r *Report) String() string {
	s := fmt.Sprintf("%s: total %.3f ms (host %.3f ms)", r.Device, r.TotalSeconds()*1e3, r.HostSeconds*1e3)
	for _, k := range r.Kernels {
		s += fmt.Sprintf("\n  [%s] %-24s %10.3f ms  blocks=%-8d LBI=%.2f sync%%=%.1f",
			k.Phase, k.Name, k.Seconds*1e3, k.BlocksExecuted, k.LBI, k.SyncStallPct)
	}
	return s
}
