package gpusim

import (
	"strings"
	"testing"
)

func TestPresetsValid(t *testing.T) {
	for _, cfg := range Presets() {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestPresetsMatchTableI(t *testing.T) {
	cases := []struct {
		cfg   Config
		sms   int
		clock float64
	}{
		{TitanXp(), 30, 1582},
		{TeslaV100(), 80, 1380},
		{RTX2080Ti(), 68, 1545},
	}
	for _, c := range cases {
		if c.cfg.NumSMs != c.sms {
			t.Errorf("%s: %d SMs, want %d", c.cfg.Name, c.cfg.NumSMs, c.sms)
		}
		if c.cfg.ClockMHz != c.clock {
			t.Errorf("%s: clock %g, want %g", c.cfg.Name, c.cfg.ClockMHz, c.clock)
		}
	}
}

func TestByName(t *testing.T) {
	cfg, err := ByName("Tesla V100")
	if err != nil || cfg.NumSMs != 80 {
		t.Fatalf("ByName(V100) = %v, %v", cfg.NumSMs, err)
	}
	if _, err := ByName("GTX 480"); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestConfigValidateRejects(t *testing.T) {
	mutations := map[string]func(*Config){
		"no SMs":         func(c *Config) { c.NumSMs = 0 },
		"zero clock":     func(c *Config) { c.ClockMHz = 0 },
		"L2 over DRAM":   func(c *Config) { c.L2Latency = c.DRAMLatency + 1 },
		"no bandwidth":   func(c *Config) { c.DRAMBandwidth = 0 },
		"no block slots": func(c *Config) { c.MaxBlocksPerSM = 0 },
		"tiny threads":   func(c *Config) { c.MaxThreadsPerSM = 8 },
		"neg chunk":      func(c *Config) { c.MaxChunk = -1 },
		"no outstanding": func(c *Config) { c.OutstandingPerWarp = 0 },
	}
	for name, mutate := range mutations {
		cfg := TitanXp()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSecondsConversion(t *testing.T) {
	cfg := TitanXp()
	// 1582 MHz: 1.582e9 cycles is one second.
	if s := cfg.Seconds(1.582e9); s < 0.999 || s > 1.001 {
		t.Fatalf("Seconds = %g, want 1", s)
	}
}

func TestBandwidthUnits(t *testing.T) {
	cfg := TitanXp()
	// 547.6 GB/s at 1582 MHz is ~346 bytes per cycle.
	if cfg.DRAMBandwidth < 340 || cfg.DRAMBandwidth > 352 {
		t.Fatalf("DRAM bytes/cycle = %g, want ~346", cfg.DRAMBandwidth)
	}
	if cfg.L2Bandwidth <= cfg.DRAMBandwidth {
		t.Fatal("L2 bandwidth not above DRAM bandwidth")
	}
}

func TestPhaseString(t *testing.T) {
	if PhasePre.String() != "pre" || PhaseExpansion.String() != "expansion" || PhaseMerge.String() != "merge" {
		t.Fatal("phase names wrong")
	}
	if !strings.Contains(Phase(9).String(), "9") {
		t.Fatal("unknown phase not descriptive")
	}
}
