package core

import (
	"errors"
	"fmt"
)

// VerifyPlan is the deep sanitizer over a built Plan: it re-derives every
// conservation law the Block Reorganizer transformation must preserve and
// returns the first violation. Where Plan.Validate checks cheap structural
// consistency, VerifyPlan proves the plan still describes the same
// multiplication the classification measured:
//
//   - workload conservation: Work[k] = nnz(a_{*k})·nnz(b_{k*}) for every
//     pair, summing to TotalWork = nnz(Ĉ), and the row-wise populations sum
//     to the same nnz(Ĉ) (block-wise and row-wise precalculation agree);
//   - B-Splitting: the mapper array is consistent (mapper[c] names the pair
//     of block c, every dominator's chunks tile [0, nnz(a_{*k})) in order
//     without gap or overlap), and A′ holds exactly the dominator elements —
//     nnz is conserved and each A′ column is bitwise the chunk the mapper
//     claims;
//   - B-Gathering: the combined and ungathered blocks cover every low
//     performer exactly once, never a pair from another category, and no
//     combined block over-packs its 32-lane budget;
//   - B-Limiting: the limited set is exactly the rows above the threshold,
//     LimitedWork matches, and the extra shared memory is the configured
//     LimitFactor × 6144 B.
//
// It costs O(nnz(A) + pairs + rows) and is wired behind Paranoid mode.
func VerifyPlan(p *Plan) error {
	if p == nil {
		return errors.New("core: nil plan")
	}
	if p.Cls == nil || p.Split == nil || p.Gather == nil || p.Limit == nil {
		return errors.New("core: plan missing a phase")
	}
	if p.A == nil || p.ACSC == nil || p.B == nil {
		return errors.New("core: plan missing an operand")
	}
	if err := verifyClassification(p); err != nil {
		return err
	}
	if err := verifySplit(p); err != nil {
		return err
	}
	if err := verifyGather(p); err != nil {
		return err
	}
	if err := verifyLimit(p); err != nil {
		return err
	}
	return p.Validate()
}

// VerifyPlanOnDevice is VerifyPlan plus the device-dependent bound: a
// limited merge block's shared memory demand must fit the per-block limit,
// or the limiting kernel can never be scheduled.
func VerifyPlanOnDevice(p *Plan, smemPerBlock int) error {
	if err := VerifyPlan(p); err != nil {
		return err
	}
	if smemPerBlock > 0 && p.Limit.ExtraSharedMem > smemPerBlock {
		return fmt.Errorf("core: limiting adds %d B shared memory, over the device's %d B per-block limit",
			p.Limit.ExtraSharedMem, smemPerBlock)
	}
	return nil
}

// verifyClassification re-derives the block-wise workloads from the
// operands and checks the category partition.
func verifyClassification(p *Plan) error {
	cls := p.Cls
	if p.ACSC.Cols != p.A.Cols || p.B.Rows != p.A.Cols {
		return fmt.Errorf("core: operand shapes disagree: A is %dx%d, A^T CSC has %d columns, B has %d rows",
			p.A.Rows, p.A.Cols, p.ACSC.Cols, p.B.Rows)
	}
	if len(cls.Work) != p.A.Cols || len(cls.EffThreads) != p.A.Cols || len(cls.Category) != p.A.Cols {
		return fmt.Errorf("core: classification covers %d pairs, want %d", len(cls.Work), p.A.Cols)
	}
	var total int64
	active := 0
	for k, w := range cls.Work {
		want := int64(p.ACSC.ColNNZ(k)) * int64(p.B.RowNNZ(k))
		if w != want {
			return fmt.Errorf("core: pair %d workload %d, want nnz(a)·nnz(b) = %d", k, w, want)
		}
		if cls.EffThreads[k] != p.B.RowNNZ(k) {
			return fmt.Errorf("core: pair %d effective threads %d, want nnz(b) = %d", k, cls.EffThreads[k], p.B.RowNNZ(k))
		}
		if w > 0 {
			total += w
			active++
		} else if cls.Category[k] != Empty {
			return fmt.Errorf("core: workless pair %d categorized %s", k, cls.Category[k])
		}
	}
	if total != cls.TotalWork {
		return fmt.Errorf("core: total workload %d, classification says %d", total, cls.TotalWork)
	}
	if active != cls.ActiveBlocks {
		return fmt.Errorf("core: %d active pairs, classification says %d", active, cls.ActiveBlocks)
	}
	if got := len(cls.Dominators) + len(cls.Normals) + len(cls.LowPerformers); got != active {
		return fmt.Errorf("core: category bins hold %d pairs, want %d active", got, active)
	}
	return nil
}

// verifySplit checks mapper consistency and nnz conservation across
// B-Splitting: every dominator's chunks tile its column exactly, and A′
// holds precisely the elements the mapper claims.
func verifySplit(p *Plan) error {
	sp := p.Split
	if len(sp.Factor) != len(p.Cls.Dominators) {
		return fmt.Errorf("core: %d split factors for %d dominators", len(sp.Factor), len(p.Cls.Dominators))
	}
	if len(sp.Mapper) != len(sp.Blocks) {
		return fmt.Errorf("core: mapper holds %d entries for %d blocks", len(sp.Mapper), len(sp.Blocks))
	}
	// Walk the blocks as consecutive per-dominator runs: dominators appear
	// in classification order, each tiled [0, colNNZ) by in-order chunks.
	c := 0
	var splitNNZ int
	for _, k := range p.Cls.Dominators {
		colNNZ := p.ACSC.ColNNZ(k)
		at := 0
		for c < len(sp.Blocks) && sp.Blocks[c].Pair == k {
			blk := sp.Blocks[c]
			if sp.Mapper[c] != k {
				return fmt.Errorf("core: mapper[%d] = %d, block multiplies pair %d", c, sp.Mapper[c], k)
			}
			if blk.ColLo != at {
				return fmt.Errorf("core: dominator %d chunk %d starts at %d, want %d (gap or overlap)", k, c, blk.ColLo, at)
			}
			if blk.ColHi <= blk.ColLo || blk.ColHi > colNNZ {
				return fmt.Errorf("core: dominator %d chunk [%d,%d) outside (%d,%d]", k, blk.ColLo, blk.ColHi, blk.ColLo, colNNZ)
			}
			at = blk.ColHi
			splitNNZ += blk.ColHi - blk.ColLo
			c++
		}
		if at != colNNZ {
			return fmt.Errorf("core: dominator %d chunks cover %d of %d elements", k, at, colNNZ)
		}
	}
	if c != len(sp.Blocks) {
		return fmt.Errorf("core: block %d multiplies pair %d, which is not a dominator", c, sp.Blocks[c].Pair)
	}
	if sp.APrime == nil {
		if len(sp.Blocks) > 0 {
			return errors.New("core: split blocks without A'")
		}
		return nil
	}
	if err := sp.APrime.CheckDeep(); err != nil {
		return fmt.Errorf("core: A': %w", err)
	}
	if sp.APrime.NNZ() != splitNNZ {
		return fmt.Errorf("core: A' holds %d elements, dominators hold %d (nnz not conserved)", sp.APrime.NNZ(), splitNNZ)
	}
	// Deep mapper check: A′ column c must be bitwise the chunk of the pair
	// the mapper names. A corrupted mapper entry or a miscopied chunk both
	// surface here.
	for c, blk := range sp.Blocks {
		gotIdx, gotVal := sp.APrime.Col(c)
		srcIdx, srcVal := p.ACSC.Col(sp.Mapper[c])
		if blk.ColHi > len(srcIdx) {
			return fmt.Errorf("core: mapper[%d] = %d names a column of %d elements, chunk wants [%d,%d)",
				c, sp.Mapper[c], len(srcIdx), blk.ColLo, blk.ColHi)
		}
		srcIdx, srcVal = srcIdx[blk.ColLo:blk.ColHi], srcVal[blk.ColLo:blk.ColHi]
		if len(gotIdx) != len(srcIdx) {
			return fmt.Errorf("core: A' column %d holds %d elements, chunk holds %d", c, len(gotIdx), len(srcIdx))
		}
		for e := range gotIdx {
			if gotIdx[e] != srcIdx[e] || gotVal[e] != srcVal[e] {
				return fmt.Errorf("core: A' column %d element %d is (%d, %g), source chunk has (%d, %g)",
					c, e, gotIdx[e], gotVal[e], srcIdx[e], srcVal[e])
			}
		}
	}
	return nil
}

// verifyGather checks that gathering is a bijection from the low performers
// onto the combined-block partitions and ungathered launches.
func verifyGather(p *Plan) error {
	isLow := make(map[int]bool, len(p.Cls.LowPerformers))
	for _, k := range p.Cls.LowPerformers {
		isLow[k] = true
	}
	seen := make(map[int]bool, len(p.Cls.LowPerformers))
	note := func(k int, where string) error {
		if !isLow[k] {
			return fmt.Errorf("core: %s block carries pair %d, category %s", where, k, p.Cls.Category[k])
		}
		if seen[k] {
			return fmt.Errorf("core: pair %d gathered twice", k)
		}
		seen[k] = true
		return nil
	}
	for i, cb := range p.Gather.Combined {
		if len(cb.Pairs) == 0 {
			return fmt.Errorf("core: combined block %d is empty", i)
		}
		lanes := 0
		for _, k := range cb.Pairs {
			if err := note(k, "combined"); err != nil {
				return err
			}
			lanes += p.Cls.EffThreads[k]
		}
		if lanes > GatherBlockSize {
			return fmt.Errorf("core: combined block %d packs %d lanes into %d", i, lanes, GatherBlockSize)
		}
	}
	for _, k := range p.Gather.Ungathered {
		if err := note(k, "ungathered"); err != nil {
			return err
		}
	}
	if len(seen) != len(p.Cls.LowPerformers) {
		return fmt.Errorf("core: gathering covers %d of %d low performers", len(seen), len(p.Cls.LowPerformers))
	}
	return nil
}

// verifyLimit checks row-wise workload conservation and that the limited
// set is exactly the rows above the threshold.
func verifyLimit(p *Plan) error {
	lim := p.Limit
	if len(lim.RowWork) != p.A.Rows {
		return fmt.Errorf("core: limit plan covers %d rows, want %d", len(lim.RowWork), p.A.Rows)
	}
	var rowTotal int64
	for i, w := range lim.RowWork {
		if w < 0 {
			return fmt.Errorf("core: negative intermediate population %d at row %d", w, i)
		}
		rowTotal += w
	}
	if rowTotal != p.Cls.TotalWork {
		return fmt.Errorf("core: row-wise workload %d, block-wise %d (nnz(Ĉ) not conserved)", rowTotal, p.Cls.TotalWork)
	}
	if want := p.Params.LimitFactor * LimitUnit; lim.ExtraSharedMem != want {
		return fmt.Errorf("core: limited blocks get %d B extra shared memory, want %d×%d = %d",
			lim.ExtraSharedMem, p.Params.LimitFactor, LimitUnit, want)
	}
	var limitedWork int64
	prev := -1
	for _, r := range lim.Limited {
		if r <= prev || r >= len(lim.RowWork) {
			return fmt.Errorf("core: limited row list not ascending in range at row %d", r)
		}
		prev = r
		if lim.RowWork[r] <= lim.Threshold {
			return fmt.Errorf("core: limited row %d population %d below threshold %d", r, lim.RowWork[r], lim.Threshold)
		}
		limitedWork += lim.RowWork[r]
	}
	if limitedWork != lim.LimitedWork {
		return fmt.Errorf("core: limited rows hold %d products, plan says %d", limitedWork, lim.LimitedWork)
	}
	if p.Params.DisableLimit {
		if len(lim.Limited) != 0 {
			return fmt.Errorf("core: limiting disabled but %d rows limited", len(lim.Limited))
		}
		return nil
	}
	if lim.Threshold > 0 {
		// Completeness: every row above the threshold must be limited.
		isLimited := make(map[int]bool, len(lim.Limited))
		for _, r := range lim.Limited {
			isLimited[r] = true
		}
		for i, w := range lim.RowWork {
			if w > lim.Threshold && !isLimited[i] {
				return fmt.Errorf("core: row %d population %d above threshold %d but not limited", i, w, lim.Threshold)
			}
		}
	}
	return nil
}
