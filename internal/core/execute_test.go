package core

import (
	"testing"
	"testing/quick"

	"github.com/blockreorg/blockreorg/internal/parallel"
	"github.com/blockreorg/blockreorg/sparse"
	"github.com/blockreorg/blockreorg/sparse/rmat"
)

// The central property of the parallel executor path: ExecuteOn must be
// bit-identical to Execute — same structure, same values to the last bit —
// for any worker count, on random matrices.
func TestExecuteOnBitIdentical(t *testing.T) {
	f := func(seed uint64) bool {
		rng := testRNG(seed)
		n := 2 + rng.IntN(40)
		m := 2 + rng.IntN(40)
		a := randomCSR(rng, n, m, 0.2)
		b := randomCSR(rng, m, n, 0.2)
		plan, err := BuildPlan(a, b, Params{})
		if err != nil {
			return false
		}
		want, err := plan.Execute(0)
		if err != nil {
			return false
		}
		for _, workers := range []int{1, 2, 7} {
			got, err := plan.ExecuteOn(parallel.NewExecutor(workers), 0)
			if err != nil || got.Validate() != nil || !got.Equal(want, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Same property on a skewed matrix that populates all three bins, where the
// launch order actually interleaves split, normal, gathered and ungathered
// blocks.
func TestExecuteOnSkewedBitIdentical(t *testing.T) {
	m, err := rmat.PowerLaw(1200, 18000, 2.05, 35)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlan(m, m, Params{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := plan.Execute(0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.ExecuteOn(parallel.NewExecutor(8), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 0) {
		t.Fatal("ExecuteOn differs from Execute on skewed input")
	}
}

// The canonical-order contract: the plan path must reproduce the
// Gustavson reference bit for bit, and slicing the operands into panels
// must reproduce the corresponding slice of the full product bit for bit
// — the block structure (and therefore the classification of a tile,
// which differs from the full matrix's) must not influence association.
func TestExecuteCanonicalOrder(t *testing.T) {
	a, err := rmat.PowerLaw(900, 14000, 2.05, 21)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rmat.Generate(900, 11000, rmat.Default, 22)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlan(a, b, Params{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := plan.ExecuteOn(parallel.NewExecutor(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sparse.Multiply(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Equal(want, 0) {
		t.Fatal("plan execution differs bitwise from the Gustavson reference")
	}
	ai := a.RowPanel(100, 500)
	bj := b.ColPanel(200, 650)
	tilePlan, err := BuildPlan(ai, bj, Params{})
	if err != nil {
		t.Fatal(err)
	}
	tile, err := tilePlan.ExecuteOn(parallel.NewExecutor(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !tile.Equal(full.RowPanel(100, 500).ColPanel(200, 650), 0) {
		t.Fatal("tile product differs bitwise from the slice of the full product")
	}
}

func TestExecuteOnRespectsLimit(t *testing.T) {
	rng := testRNG(5)
	a := randomCSR(rng, 20, 20, 0.3)
	plan, err := BuildPlan(a, a, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.ExecuteOn(nil, 1); err == nil {
		t.Fatal("intermediate limit not enforced")
	}
}

// The plan must stash the symbolic row populations at build time (the
// plan-cache reuse paths depend on them), and a rebind must carry them
// over unchanged — they are structure-only.
func TestPlanStashesRowNNZ(t *testing.T) {
	rng := testRNG(11)
	a := randomCSR(rng, 60, 50, 0.15)
	b := randomCSR(rng, 50, 70, 0.15)
	plan, err := BuildPlan(a, b, Params{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sparse.SymbolicRowNNZ(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.RowNNZ) != len(want) {
		t.Fatalf("RowNNZ length %d, want %d", len(plan.RowNNZ), len(want))
	}
	var nnzc int64
	for i := range want {
		if plan.RowNNZ[i] != want[i] {
			t.Fatalf("RowNNZ[%d] = %d, want %d", i, plan.RowNNZ[i], want[i])
		}
		nnzc += int64(want[i])
	}
	if plan.NNZC != nnzc {
		t.Fatalf("NNZC = %d, want %d", plan.NNZC, nnzc)
	}

	a2 := a.Clone()
	a2.Scale(3)
	b2 := b.Clone()
	re, err := plan.Rebind(a2, b2)
	if err != nil {
		t.Fatal(err)
	}
	if re.NNZC != nnzc || len(re.RowNNZ) != len(want) {
		t.Fatal("rebind dropped the stashed symbolic populations")
	}
	got, err := re.ExecuteOn(parallel.NewExecutor(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	wantC, err := re.Execute(0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(wantC, 0) {
		t.Fatal("rebound ExecuteOn differs from Execute")
	}
}
