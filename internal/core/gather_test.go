package core

import (
	"testing"

	"github.com/blockreorg/blockreorg/sparse/rmat"
)

func TestGatherBinsRespectRanges(t *testing.T) {
	cls, _ := skewedFixture(t, 3000, 24000, 21)
	if len(cls.LowPerformers) == 0 {
		t.Skip("no low performers drawn")
	}
	plan, err := PlanGather(cls, Params{})
	if err != nil {
		t.Fatal(err)
	}
	for _, bin := range plan.Bins {
		if bin.MaxEff < 1 || bin.MaxEff > WarpSize || bin.MaxEff&(bin.MaxEff-1) != 0 {
			t.Fatalf("bin MaxEff %d not a power of two in range", bin.MaxEff)
		}
		if bin.Factor != GatherBlockSize/bin.MaxEff {
			t.Fatalf("bin MaxEff %d factor %d, want %d", bin.MaxEff, bin.Factor, GatherBlockSize/bin.MaxEff)
		}
		lo := bin.MaxEff/2 + 1
		if bin.MaxEff == 1 {
			lo = 1
		}
		for _, k := range bin.Pairs {
			eff := cls.EffThreads[k]
			if eff < lo || eff > bin.MaxEff {
				t.Fatalf("pair %d (eff %d) in bin (%d, %d]", k, eff, bin.MaxEff/2, bin.MaxEff)
			}
		}
	}
}

func TestGatherCoversAllLowPerformersOnce(t *testing.T) {
	cls, _ := skewedFixture(t, 3000, 24000, 22)
	plan, err := PlanGather(cls, Params{})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	for _, cb := range plan.Combined {
		if len(cb.Pairs) == 0 || len(cb.Pairs) > GatherBlockSize/cb.MaxEff {
			t.Fatalf("combined block holds %d partitions with MaxEff %d", len(cb.Pairs), cb.MaxEff)
		}
		for _, k := range cb.Pairs {
			seen[k]++
		}
	}
	for _, k := range plan.Ungathered {
		seen[k]++
	}
	if len(seen) != len(cls.LowPerformers) {
		t.Fatalf("plan covers %d pairs, want %d", len(seen), len(cls.LowPerformers))
	}
	for _, k := range cls.LowPerformers {
		if seen[k] != 1 {
			t.Fatalf("pair %d covered %d times", k, seen[k])
		}
	}
	if plan.MicroBlocks() != len(cls.LowPerformers) {
		t.Fatalf("MicroBlocks = %d, want %d", plan.MicroBlocks(), len(cls.LowPerformers))
	}
}

func TestGatherShrinksBlockCount(t *testing.T) {
	// A very sparse power-law matrix has mostly tiny rows; gathering must
	// collapse the block count substantially (this is the entire point).
	m, err := rmat.PowerLaw(6000, 18000, 2.3, 23)
	if err != nil {
		t.Fatal(err)
	}
	cls, err := Classify(m.ToCSC(), m, Params{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanGather(cls, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cls.LowPerformers) < 100 {
		t.Skip("too few low performers to judge")
	}
	if plan.NumBlocks()*3 > len(cls.LowPerformers) {
		t.Fatalf("gathering left %d blocks from %d low performers", plan.NumBlocks(), len(cls.LowPerformers))
	}
}

func TestGatherDisabled(t *testing.T) {
	cls, _ := skewedFixture(t, 2000, 16000, 24)
	plan, err := PlanGather(cls, Params{DisableGather: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Combined) != 0 {
		t.Fatal("disabled gathering still combined blocks")
	}
	if len(plan.Ungathered) != len(cls.LowPerformers) {
		t.Fatalf("ungathered %d, want %d", len(plan.Ungathered), len(cls.LowPerformers))
	}
}

func TestGatherSixteenLanePairsNotGathered(t *testing.T) {
	cls, _ := skewedFixture(t, 3000, 24000, 25)
	plan, err := PlanGather(cls, Params{})
	if err != nil {
		t.Fatal(err)
	}
	// Pairs with 17..31 effective threads (bin MaxEff=32, factor 1) must
	// be launched alone.
	for _, cb := range plan.Combined {
		if cb.MaxEff == WarpSize {
			t.Fatal("factor-1 bin was gathered")
		}
	}
	for _, k := range plan.Ungathered {
		if eff := cls.EffThreads[k]; eff <= 16 {
			t.Fatalf("pair %d with eff %d was left ungathered", k, eff)
		}
	}
}

func TestGatherFirstFitCoversOnce(t *testing.T) {
	cls, _ := skewedFixture(t, 3000, 24000, 26)
	plan, err := PlanGather(cls, Params{GatherPolicy: GatherFirstFit})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	for _, cb := range plan.Combined {
		lanes := 0
		if len(cb.Pairs) < 2 {
			t.Fatalf("first-fit combined block with %d pairs", len(cb.Pairs))
		}
		for _, k := range cb.Pairs {
			seen[k]++
			lanes += cls.EffThreads[k]
		}
		if lanes > GatherBlockSize {
			t.Fatalf("combined block packs %d lanes", lanes)
		}
	}
	for _, k := range plan.Ungathered {
		seen[k]++
	}
	if plan.MicroBlocks() != len(cls.LowPerformers) {
		t.Fatalf("first-fit covers %d pairs, want %d", plan.MicroBlocks(), len(cls.LowPerformers))
	}
	for _, k := range cls.LowPerformers {
		if seen[k] != 1 {
			t.Fatalf("pair %d covered %d times", k, seen[k])
		}
	}
}

// First-fit must not launch more blocks than the power-of-two bins: exact
// packing dominates bin packing on block count.
func TestGatherFirstFitPacksTighter(t *testing.T) {
	cls, _ := skewedFixture(t, 4000, 32000, 27)
	bins, err := PlanGather(cls, Params{})
	if err != nil {
		t.Fatal(err)
	}
	fit, err := PlanGather(cls, Params{GatherPolicy: GatherFirstFit})
	if err != nil {
		t.Fatal(err)
	}
	if fit.NumBlocks() > bins.NumBlocks() {
		t.Fatalf("first-fit launches %d blocks, bins launch %d", fit.NumBlocks(), bins.NumBlocks())
	}
}

// The packing policy must not change the product.
func TestGatherFirstFitPreservesProduct(t *testing.T) {
	m, err := rmat.PowerLaw(900, 10000, 2.1, 28)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlan(m, m, Params{GatherPolicy: GatherFirstFit})
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.Execute(0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := BuildPlan(m, m, Params{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Execute(0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-9) {
		t.Fatal("first-fit gathering changed the product")
	}
}

func TestGatherFirstFitDeterministic(t *testing.T) {
	cls, _ := skewedFixture(t, 2000, 16000, 29)
	a, _ := PlanGather(cls, Params{GatherPolicy: GatherFirstFit})
	b, _ := PlanGather(cls, Params{GatherPolicy: GatherFirstFit})
	if len(a.Combined) != len(b.Combined) || len(a.Ungathered) != len(b.Ungathered) {
		t.Fatal("first-fit nondeterministic")
	}
	for i := range a.Combined {
		if len(a.Combined[i].Pairs) != len(b.Combined[i].Pairs) {
			t.Fatal("first-fit block composition nondeterministic")
		}
		for j := range a.Combined[i].Pairs {
			if a.Combined[i].Pairs[j] != b.Combined[i].Pairs[j] {
				t.Fatal("first-fit pair order nondeterministic")
			}
		}
	}
}
