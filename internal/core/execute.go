package core

import (
	"fmt"
	"sync/atomic"

	"github.com/blockreorg/blockreorg/internal/parallel"
	"github.com/blockreorg/blockreorg/internal/trace"
	"github.com/blockreorg/blockreorg/sparse"
)

// ExecuteOn is Execute on an explicit executor (nil selects the
// process-wide default), with all scratch drawn from the shared arenas.
//
// The result is bit-identical to Execute, to sparse.Multiply, and to the
// engine's Gustavson fallback: every output entry sums its intermediate
// products in the canonical order — ascending k over A's row entries,
// B-row order within one k — regardless of how the plan's block structure
// reorganizes the launch. Expansion achieves this by writing each
// partition's products directly at precomputed canonical offsets inside
// their output row's segment, so neither the block launch order nor
// expansion parallelism can influence a single bit of the result. This
// canonical-order contract is what lets an out-of-core tiling (package
// ooc) slice operands into arbitrary panels and still reassemble the
// bitwise-identical product: a column slice of B drops contributions
// without reordering the survivors. The plan's stashed row populations
// give every merged row its final position up front, so chunks write
// straight into the result arrays with no stitching pass.
func (p *Plan) ExecuteOn(ex *parallel.Executor, maxIntermediate int64) (*sparse.CSR, error) {
	return p.ExecuteTraced(ex, maxIntermediate, nil)
}

// ExecuteTraced is ExecuteOn with phase-level tracing: the expansion walk,
// the row scatter and the per-row merge each record a span on rec (nil
// disables tracing at zero cost; the result is identical either way).
func (p *Plan) ExecuteTraced(ex *parallel.Executor, maxIntermediate int64, rec *trace.Recorder) (*sparse.CSR, error) {
	if maxIntermediate > 0 && p.Cls.TotalWork > maxIntermediate {
		return nil, fmt.Errorf("core: intermediate matrix has %d products, over limit %d", p.Cls.TotalWork, maxIntermediate)
	}
	if ex == nil {
		ex = parallel.Default()
	}
	if p.RowNNZ == nil {
		// A plan built before the symbolic populations were stashed cannot
		// pre-place its merged rows; run the sequential reference.
		endExp := rec.SpanItems(trace.PhaseExpansion, p.Cls.TotalWork)
		c, err := p.Execute(maxIntermediate)
		endExp()
		return c, err
	}

	// Snapshot the launch order as flat arena-backed arrays: a counting
	// visit sizes them, a second visit fills partition triples plus the
	// per-block partition extents. A per-block []Partition copy would cost
	// one allocation per block, which for real plans is thousands.
	nBlocks, nParts := 0, 0
	p.VisitBlocks(func(_ BlockKind, parts []Partition) {
		nBlocks++
		nParts += len(parts)
	})
	partPair := parallel.GetInts(nParts)
	partLo := parallel.GetInts(nParts)
	partHi := parallel.GetInts(nParts)
	blockPart := parallel.GetInts(nBlocks + 1)
	weights := parallel.GetInt64s(nBlocks)
	bi, pi, total := 0, 0, 0
	p.VisitBlocks(func(_ BlockKind, parts []Partition) {
		blockPart[bi] = pi
		n := 0
		for _, part := range parts {
			partPair[pi] = part.Pair
			partLo[pi] = part.ColLo
			partHi[pi] = part.ColHi
			pi++
			n += (part.ColHi - part.ColLo) * p.B.RowNNZ(part.Pair)
		}
		weights[bi] = int64(n)
		bi++
		total += n
	})
	blockPart[nBlocks] = pi
	if int64(total) != p.Cls.TotalWork {
		parallel.PutInts(partPair)
		parallel.PutInts(partLo)
		parallel.PutInts(partHi)
		parallel.PutInts(blockPart)
		parallel.PutInt64s(weights)
		return nil, fmt.Errorf("core: plan launches %d products, classified %d", total, p.Cls.TotalWork)
	}

	// Scatter preparation: the row segment extents (exact, from the plan's
	// intermediate row populations) plus the canonical offset of every
	// ACSC entry's product run inside its row segment. Entry (i, k) — the
	// t-th entry of A's row i — owns the run of B.RowNNZ(k) products that
	// starts after the runs of the row's earlier entries; walking A's rows
	// while advancing one fill cursor per column reproduces the CSC entry
	// order exactly, so the offsets line up with ACSC's column storage.
	rows := p.A.Rows
	endScat := rec.SpanItems(trace.PhaseScatter, int64(total))
	ptr := parallel.GetInts(rows + 1)
	ptr[0] = 0
	for i := 0; i < rows; i++ {
		ptr[i+1] = ptr[i] + int(p.Limit.RowWork[i])
	}
	if ptr[rows] != total {
		parallel.PutInts(ptr)
		parallel.PutInts(partPair)
		parallel.PutInts(partLo)
		parallel.PutInts(partHi)
		parallel.PutInts(blockPart)
		parallel.PutInt64s(weights)
		endScat()
		return nil, fmt.Errorf("core: row work sums to %d products, classified %d", ptr[rows], total)
	}
	nCols := p.ACSC.Cols
	cscStart := parallel.GetInts(nCols + 1)
	cscStart[0] = 0
	for k := 0; k < nCols; k++ {
		cscStart[k+1] = cscStart[k] + p.ACSC.ColNNZ(k)
	}
	canon := parallel.GetInts(cscStart[nCols])
	cursor := parallel.GetIntsZeroed(nCols)
	for i := 0; i < rows; i++ {
		idx, _ := p.A.Row(i)
		off := 0
		for _, ka := range idx {
			canon[cscStart[ka]+cursor[ka]] = off
			cursor[ka]++
			off += p.B.RowNNZ(ka)
		}
	}
	parallel.PutInts(cursor)
	endScat()

	// Expansion: every partition writes each entry's product run directly
	// at its canonical position — row segment start plus canonical offset —
	// so the scattered arrays come out in canonical merge order with no
	// separate scatter pass. Blocks are chunked by product count so the
	// split dominators at the head of the launch order do not serialize
	// the phase; chunks write disjoint positions by construction.
	scatIdx := parallel.GetInts(total)
	scatVal := parallel.GetFloats(total)
	chunks := parallel.WeightedRanges(weights, 4*ex.Workers())
	parallel.PutInt64s(weights)
	endExp := rec.SpanItems(trace.PhaseExpansion, int64(total))
	ex.ForEach(chunks, func(r parallel.Range) {
		for b := r.Lo; b < r.Hi; b++ {
			for k := blockPart[b]; k < blockPart[b+1]; k++ {
				ka := partPair[k]
				colIdx, colVal := p.ACSC.Col(ka)
				rowIdx, rowVal := p.B.Row(ka)
				base := cscStart[ka]
				for e := partLo[k]; e < partHi[k]; e++ {
					i := colIdx[e]
					av := colVal[e]
					pos := ptr[i] + canon[base+e]
					for rr := range rowIdx {
						scatIdx[pos] = rowIdx[rr]
						scatVal[pos] = av * rowVal[rr]
						pos++
					}
				}
			}
		}
	})
	endExp()
	parallel.PutInts(partPair)
	parallel.PutInts(partLo)
	parallel.PutInts(partHi)
	parallel.PutInts(blockPart)
	parallel.PutInts(cscStart)
	parallel.PutInts(canon)

	// Merge: combine each row under the plan's assigned accumulator
	// strategy and append it into its final slot, known up front from the
	// stashed symbolic row populations. Row chunks are weighted by
	// pre-merge population — the merge's true cost. Every strategy sums
	// duplicate columns in stream order (sparse.RowMerger), so the result
	// is bit-identical regardless of the assignment.
	c := sparse.NewCSRWithRowSizes(rows, p.B.Cols, p.RowNNZ)
	endMerge := rec.SpanItems(trace.PhaseMerge, p.NNZC)
	var badRow atomic.Int64
	badRow.Store(-1)
	ex.ForEach(parallel.WeightedRanges(p.Limit.RowWork, 4*ex.Workers()), func(r parallel.Range) {
		mg := sparse.NewRowMerger(p.B.Cols)
		defer mg.Release()
		for i := r.Lo; i < r.Hi; i++ {
			kind := sparse.AccumSort
			if p.Accum != nil {
				kind = p.Accum.Rows[i]
			}
			// Three-index slices cap the append at the row's slot: a row
			// that merges to an unexpected length spills into a private
			// reallocation instead of a neighbouring chunk's rows.
			dstIdx, dstVal := c.Row(i)
			outIdx, _ := mg.Merge(kind,
				scatIdx[ptr[i]:ptr[i+1]], scatVal[ptr[i]:ptr[i+1]],
				dstIdx[0:0:len(dstIdx)], dstVal[0:0:len(dstVal)])
			if len(outIdx) != p.RowNNZ[i] {
				badRow.Store(int64(i))
				return
			}
		}
	})
	parallel.PutInts(ptr)
	parallel.PutInts(scatIdx)
	parallel.PutFloats(scatVal)
	endMerge()
	if i := badRow.Load(); i >= 0 {
		return nil, fmt.Errorf("core: row %d merged to an unexpected population, plan recorded %d", i, p.RowNNZ[i])
	}
	return c, nil
}
