package core

import (
	"sort"

	"github.com/blockreorg/blockreorg/sparse"
)

// The paper fixes α per experiment but notes that "the criteria for
// classification can be changed by adjusting the value of α based on the
// target sparse network characteristics": highly skewed networks tolerate
// aggressive thresholds while flatter networks must not drown in dominator
// splitting overhead. AutoTuneAlpha derives α from the data instead of
// guessing.

// dominatorWorkShare is the fraction of the total intermediate workload the
// auto-tuner aims to classify as dominators: enough to capture the heavy
// hub pairs, small enough that splitting overhead stays negligible.
const dominatorWorkShare = 0.30

// AutoTuneAlpha picks the dominator threshold divisor for the pair (A, B):
// the α under which the dominator bin holds roughly dominatorWorkShare of
// nnz(Ĉ) — the heavy head of the block-wise workload distribution. On
// regular matrices the head is flat, the implied threshold is high and α
// collapses to its floor, selecting (next to) no dominators; on hub-heavy
// networks the head is steep and α rises until the hubs are caught.
//
// The result is clamped to [1, 64] and is deterministic.
func AutoTuneAlpha(a *sparse.CSC, b *sparse.CSR, numSMs int) (float64, error) {
	if numSMs < 1 {
		numSMs = 30
	}
	work, err := sparse.OuterProductWork(a, b)
	if err != nil {
		return 0, err
	}
	var total int64
	active := work[:0:0]
	for _, w := range work {
		if w > 0 {
			active = append(active, w)
			total += w
		}
	}
	if total == 0 || len(active) == 0 {
		return DefaultAlpha, nil
	}
	sort.Slice(active, func(i, j int) bool { return active[i] > active[j] })
	// Walk the head until the target share is covered; the boundary pair's
	// workload becomes the threshold.
	target := int64(float64(total) * dominatorWorkShare)
	var cum int64
	boundary := active[0]
	for _, w := range active {
		cum += w
		boundary = w
		if cum >= target {
			break
		}
	}
	if boundary < 1 {
		boundary = 1
	}
	alpha := float64(total) / (float64(numSMs) * float64(boundary))
	if alpha < 1 {
		alpha = 1
	}
	if alpha > 64 {
		alpha = 64
	}
	return alpha, nil
}
