package core

import (
	"testing"
	"testing/quick"

	"github.com/blockreorg/blockreorg/sparse"
	"github.com/blockreorg/blockreorg/sparse/rmat"
)

func TestPlanLimitSelectsLongRows(t *testing.T) {
	cls, in := skewedFixture(t, 3000, 45000, 31)
	plan, err := PlanLimit(in.csr, in.csr, cls, Params{})
	if err != nil {
		t.Fatal(err)
	}
	rowWork, err := sparse.IntermediateRowNNZ(in.csr, in.csr)
	if err != nil {
		t.Fatal(err)
	}
	limited := make(map[int]bool, len(plan.Limited))
	var work int64
	for _, i := range plan.Limited {
		limited[i] = true
		work += rowWork[i]
	}
	for i, w := range rowWork {
		if (w > plan.Threshold) != limited[i] {
			t.Fatalf("row %d (work %d, threshold %d) limited=%v", i, w, plan.Threshold, limited[i])
		}
	}
	if work != plan.LimitedWork {
		t.Fatalf("LimitedWork %d, want %d", plan.LimitedWork, work)
	}
	if plan.ExtraSharedMem != DefaultLimitFactor*LimitUnit {
		t.Fatalf("ExtraSharedMem = %d", plan.ExtraSharedMem)
	}
}

func TestPlanLimitDisabled(t *testing.T) {
	cls, in := skewedFixture(t, 2000, 30000, 32)
	plan, err := PlanLimit(in.csr, in.csr, cls, Params{DisableLimit: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Limited) != 0 {
		t.Fatal("disabled limiting still limited rows")
	}
	if len(plan.RowWork) != in.csr.Rows {
		t.Fatal("row populations missing when disabled")
	}
}

func TestPlanLimitFactorScalesSharedMem(t *testing.T) {
	cls, in := skewedFixture(t, 1000, 15000, 33)
	for factor := 1; factor <= 7; factor++ {
		plan, err := PlanLimit(in.csr, in.csr, cls, Params{LimitFactor: factor})
		if err != nil {
			t.Fatal(err)
		}
		if plan.ExtraSharedMem != factor*LimitUnit {
			t.Fatalf("factor %d: extra smem %d", factor, plan.ExtraSharedMem)
		}
	}
}

// The central fidelity property: executing the reorganized block structure
// yields exactly the reference product, on random matrices.
func TestPlanExecuteMatchesReference(t *testing.T) {
	f := func(seed uint64) bool {
		rng := testRNG(seed)
		n := 2 + rng.IntN(40)
		m := 2 + rng.IntN(40)
		a := randomCSR(rng, n, m, 0.2)
		b := randomCSR(rng, m, n, 0.2)
		plan, err := BuildPlan(a, b, Params{})
		if err != nil {
			return false
		}
		got, err := plan.Execute(0)
		if err != nil {
			return false
		}
		want, err := sparse.Multiply(a, b)
		if err != nil {
			return false
		}
		return got.ToDense().Equal(want.ToDense(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Same fidelity property on a skewed matrix that actually triggers all
// three bins (dominators, normals, low performers).
func TestPlanExecuteSkewedAllBins(t *testing.T) {
	m, err := rmat.PowerLaw(1200, 18000, 2.05, 35)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlan(m, m, Params{})
	if err != nil {
		t.Fatal(err)
	}
	st := plan.Stats()
	if st.Dominators == 0 || st.LowPerformers == 0 || st.Normals == 0 {
		t.Skipf("fixture did not populate all bins: %+v", st)
	}
	got, err := plan.Execute(0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sparse.Multiply(m, m)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != want.Rows || got.Cols != want.Cols || got.NNZ() != want.NNZ() {
		t.Fatalf("shape/nnz mismatch: got %d nnz, want %d", got.NNZ(), want.NNZ())
	}
	if !got.Equal(want, 1e-9) {
		t.Fatal("reorganized product differs from reference")
	}
}

// Ablation combinations must all preserve the product.
func TestPlanExecuteWithTogglesMatchesReference(t *testing.T) {
	m, err := rmat.PowerLaw(800, 9000, 2.1, 36)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sparse.Multiply(m, m)
	if err != nil {
		t.Fatal(err)
	}
	combos := []Params{
		{DisableSplit: true},
		{DisableGather: true},
		{DisableLimit: true},
		{DisableSplit: true, DisableGather: true, DisableLimit: true},
		{SplitFactorOverride: 4},
		{Alpha: 2}, {Alpha: 64},
	}
	for i, p := range combos {
		plan, err := BuildPlan(m, m, p)
		if err != nil {
			t.Fatalf("combo %d: %v", i, err)
		}
		got, err := plan.Execute(0)
		if err != nil {
			t.Fatalf("combo %d: %v", i, err)
		}
		if !got.Equal(want, 1e-9) {
			t.Fatalf("combo %d (%+v) changed the product", i, p)
		}
	}
}

// Every pair with work appears in the visited blocks with exact element
// coverage.
func TestVisitBlocksCoverage(t *testing.T) {
	cls, in := skewedFixture(t, 1500, 20000, 37)
	plan, err := BuildPlan(in.csr, in.csr, Params{})
	if err != nil {
		t.Fatal(err)
	}
	covered := make([]int, in.csr.Cols) // elements covered per pair
	visits := make(map[BlockKind]int)
	plan.VisitBlocks(func(kind BlockKind, parts []Partition) {
		visits[kind]++
		for _, part := range parts {
			covered[part.Pair] += part.ColHi - part.ColLo
		}
	})
	for k, w := range cls.Work {
		want := 0
		if w > 0 {
			want = plan.ACSC.ColNNZ(k)
		}
		if covered[k] != want {
			t.Fatalf("pair %d covered %d elements, want %d", k, covered[k], want)
		}
	}
	if visits[KindSplit] != plan.Split.NumBlocks() {
		t.Fatalf("split visits %d, want %d", visits[KindSplit], plan.Split.NumBlocks())
	}
	if visits[KindGathered] != len(plan.Gather.Combined) {
		t.Fatalf("gathered visits %d, want %d", visits[KindGathered], len(plan.Gather.Combined))
	}
}

func TestPlanExecuteGuard(t *testing.T) {
	m, _ := rmat.PowerLaw(500, 5000, 2.2, 38)
	plan, err := BuildPlan(m, m, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Execute(1); err == nil {
		t.Fatal("intermediate guard did not trip")
	}
}

func TestBuildPlanNilOperand(t *testing.T) {
	if _, err := BuildPlan(nil, nil, Params{}); err == nil {
		t.Fatal("nil operands accepted")
	}
}

func TestPlanStatsConsistent(t *testing.T) {
	cls, in := skewedFixture(t, 1500, 22000, 39)
	plan, err := BuildPlan(in.csr, in.csr, Params{})
	if err != nil {
		t.Fatal(err)
	}
	st := plan.Stats()
	if st.Dominators != len(cls.Dominators) && st.TotalWork != cls.TotalWork {
		t.Fatalf("stats inconsistent with classification: %+v", st)
	}
	if st.Pairs != in.csr.Cols {
		t.Fatalf("pairs %d, want %d", st.Pairs, in.csr.Cols)
	}
	if plan.NumBlocks() != st.SplitBlocks+st.Normals+st.CombinedBlocks+st.UngatheredLows {
		t.Fatal("NumBlocks disagrees with stats")
	}
}

func TestBlockKindString(t *testing.T) {
	kinds := map[BlockKind]string{KindNormal: "normal", KindSplit: "split", KindGathered: "gathered", KindUngathered: "ungathered"}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%v", k)
		}
	}
}

// Plans built under every policy combination must validate.
func TestPlanValidate(t *testing.T) {
	m, err := rmat.PowerLaw(1500, 18000, 2.05, 91)
	if err != nil {
		t.Fatal(err)
	}
	combos := []Params{
		{},
		{DisableSplit: true},
		{DisableGather: true},
		{GatherPolicy: GatherFirstFit},
		{SplitFactorOverride: 16},
		{AutoAlpha: true},
	}
	for i, p := range combos {
		plan, err := BuildPlan(m, m, p)
		if err != nil {
			t.Fatalf("combo %d: %v", i, err)
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("combo %d: %v", i, err)
		}
	}
	// A corrupted plan must be caught.
	plan, _ := BuildPlan(m, m, Params{})
	if len(plan.Split.Mapper) > 0 {
		plan.Split.Mapper[0]++
		if err := plan.Validate(); err == nil {
			t.Fatal("corrupted mapper accepted")
		}
	}
}
