package core

import (
	"errors"
	"fmt"
	"sort"

	"github.com/blockreorg/blockreorg/internal/trace"
	"github.com/blockreorg/blockreorg/sparse"
)

// BlockKind distinguishes the expansion blocks a Plan launches.
type BlockKind uint8

// Expansion block kinds.
const (
	// KindNormal is an untransformed pair block.
	KindNormal BlockKind = iota
	// KindSplit is one sub-block of a split dominator.
	KindSplit
	// KindGathered is a combined block of micro-block partitions.
	KindGathered
	// KindUngathered is a low performer launched alone (its bin had
	// gathering factor 1, or gathering is disabled).
	KindUngathered
)

// String names the kind for labels and reports.
func (k BlockKind) String() string {
	switch k {
	case KindNormal:
		return "normal"
	case KindSplit:
		return "split"
	case KindGathered:
		return "gathered"
	case KindUngathered:
		return "ungathered"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Partition is one unit of outer-product work inside an expansion block:
// elements [ColLo, ColHi) of A's column Pair against all of B's row Pair.
type Partition struct {
	Pair         int
	ColLo, ColHi int
}

// Plan is the complete Block Reorganizer output for one multiplication:
// classification plus the three technique plans, ready for functional
// execution or timing simulation.
type Plan struct {
	Params Params
	A      *sparse.CSR
	ACSC   *sparse.CSC
	B      *sparse.CSR
	Cls    *Classification
	Split  *SplitPlan
	Gather *GatherPlan
	Limit  *LimitPlan

	// RowNNZ holds the exact merged row populations of C (the symbolic
	// product) and NNZC their sum. Both depend only on the operand
	// structure, so a rebound plan (Rebind) keeps them; stashing them here
	// is what lets plan-cache hits skip the symbolic sweep entirely.
	RowNNZ []int
	NNZC   int64

	// Accum is the per-row merge-strategy assignment resolved from
	// Params.Accumulator and Limit.RowWork. Structure-only like RowNNZ, so
	// rebound plans keep their selection.
	Accum *AccumPlan
}

// BuildPlan runs the full Block Reorganizer preprocessing for C = A×B.
func BuildPlan(a, b *sparse.CSR, p Params) (*Plan, error) {
	if a == nil || b == nil {
		return nil, errors.New("core: nil operand")
	}
	return BuildPlanCached(a, nil, b, nil, nil, p)
}

// BuildPlanCached is BuildPlan with optionally precomputed inputs: acsc is
// A in column orientation, rowWork the per-row intermediate populations of
// C, and rowNNZ its exact merged row populations (the symbolic product);
// any may be nil to compute it here. Callers that analyze the same operands
// repeatedly (the precompute layer, the benchmark harness) share these
// across runs.
func BuildPlanCached(a *sparse.CSR, acsc *sparse.CSC, b *sparse.CSR, rowWork []int64, rowNNZ []int, p Params) (*Plan, error) {
	return BuildPlanTraced(a, acsc, b, rowWork, rowNNZ, p, nil)
}

// BuildPlanTraced is BuildPlanCached with phase-level tracing: the
// classification, B-Splitting, B-Gathering and B-Limiting stages (and any
// symbolic sweeps computed here rather than supplied) each record a span
// on rec. A nil rec disables tracing at zero cost; the plan never retains
// the recorder.
func BuildPlanTraced(a *sparse.CSR, acsc *sparse.CSC, b *sparse.CSR, rowWork []int64, rowNNZ []int, p Params, rec *trace.Recorder) (*Plan, error) {
	p, err := p.Normalize()
	if err != nil {
		return nil, err
	}
	if a == nil || b == nil {
		return nil, errors.New("core: nil operand")
	}
	if acsc == nil {
		endConv := rec.SpanItems(trace.PhaseConvert, int64(a.NNZ()))
		acsc = a.ToCSC()
		endConv()
	}
	// Auto-tuning inspects the same workload distribution Classify bins,
	// so its time is billed to the classification phase.
	endCls := rec.SpanItems(trace.PhaseClassify, int64(acsc.Cols))
	if p.AutoAlpha {
		alpha, err := AutoTuneAlpha(acsc, b, p.NumSMs)
		if err != nil {
			endCls()
			return nil, err
		}
		p.Alpha = alpha
	}
	cls, err := Classify(acsc, b, p)
	endCls()
	if err != nil {
		return nil, err
	}
	endSplit := rec.SpanItems(trace.PhaseSplit, int64(len(cls.Dominators)))
	split, err := PlanSplit(cls, acsc, p)
	endSplit()
	if err != nil {
		return nil, err
	}
	endGather := rec.SpanItems(trace.PhaseGather, int64(len(cls.LowPerformers)))
	gather, err := PlanGather(cls, p)
	endGather()
	if err != nil {
		return nil, err
	}
	if rowWork == nil {
		endWork := rec.Span(trace.PhaseIntermediate)
		rowWork, err = sparse.IntermediateRowNNZ(a, b)
		endWork()
		if err != nil {
			return nil, err
		}
	}
	endLimit := rec.SpanItems(trace.PhaseLimit, int64(a.Rows))
	limit, err := PlanLimitFrom(rowWork, cls, p)
	endLimit()
	if err != nil {
		return nil, err
	}
	if rowNNZ == nil {
		endSym := rec.Span(trace.PhaseSymbolic)
		rowNNZ, err = sparse.SymbolicRowNNZOn(a, b, nil)
		endSym()
		if err != nil {
			return nil, err
		}
	}
	var nnzc int64
	for _, n := range rowNNZ {
		nnzc += int64(n)
	}
	plan := &Plan{
		Params: p, A: a, ACSC: acsc, B: b,
		Cls: cls, Split: split, Gather: gather, Limit: limit,
		RowNNZ: rowNNZ, NNZC: nnzc,
		Accum: BuildAccumPlan(p.Accumulator, limit.RowWork, b.Cols),
	}
	plan.RecordTrace(rec)
	return plan, nil
}

// VisitBlocks calls fn once per expansion thread block the plan launches,
// in launch order: split dominator sub-blocks first (they run longest),
// then normal blocks, then gathered and ungathered low performers. The
// parts slice is reused between calls; callers must not retain it.
func (p *Plan) VisitBlocks(fn func(kind BlockKind, parts []Partition)) {
	buf := make([]Partition, 0, GatherBlockSize)
	for _, blk := range p.Split.Blocks {
		buf = buf[:0]
		buf = append(buf, Partition{Pair: blk.Pair, ColLo: blk.ColLo, ColHi: blk.ColHi})
		fn(KindSplit, buf)
	}
	for _, k := range p.Cls.Normals {
		buf = buf[:0]
		buf = append(buf, Partition{Pair: k, ColLo: 0, ColHi: p.ACSC.ColNNZ(k)})
		fn(KindNormal, buf)
	}
	for _, cb := range p.Gather.Combined {
		buf = buf[:0]
		for _, k := range cb.Pairs {
			buf = append(buf, Partition{Pair: k, ColLo: 0, ColHi: p.ACSC.ColNNZ(k)})
		}
		fn(KindGathered, buf)
	}
	for _, k := range p.Gather.Ungathered {
		buf = buf[:0]
		buf = append(buf, Partition{Pair: k, ColLo: 0, ColHi: p.ACSC.ColNNZ(k)})
		fn(KindUngathered, buf)
	}
}

// NumBlocks returns the number of expansion blocks launched.
func (p *Plan) NumBlocks() int {
	return p.Split.NumBlocks() + len(p.Cls.Normals) + p.Gather.NumBlocks()
}

// Execute computes C = A×B functionally by walking the transformed block
// structure — every split sub-block, gathered partition and normal pair —
// and merging the intermediate products, proving that the reorganized
// launch produces exactly the reference product. The products are
// enumerated in block launch order but merged in the canonical order
// (ascending k within each output row, B-row order within one k), so the
// result is bit-identical to ExecuteOn, to sparse.Multiply, and to any
// panel-tiled reassembly — the launch order covers the multiset of
// products, the canonical order fixes their floating-point association.
//
// Memory is O(nnz(Ĉ)); intended for validation and moderate sizes. The
// maxIntermediate guard (0 = no limit) rejects materializations that would
// not fit.
func (p *Plan) Execute(maxIntermediate int64) (*sparse.CSR, error) {
	if maxIntermediate > 0 && p.Cls.TotalWork > maxIntermediate {
		return nil, fmt.Errorf("core: intermediate matrix has %d products, over limit %d", p.Cls.TotalWork, maxIntermediate)
	}
	total := int(p.Cls.TotalWork)
	is := make([]int, 0, total)
	ks := make([]int, 0, total)
	js := make([]int, 0, total)
	vs := make([]float64, 0, total)
	p.VisitBlocks(func(_ BlockKind, parts []Partition) {
		for _, part := range parts {
			colIdx, colVal := p.ACSC.Col(part.Pair)
			rowIdx, rowVal := p.B.Row(part.Pair)
			for e := part.ColLo; e < part.ColHi; e++ {
				i := colIdx[e]
				av := colVal[e]
				for r := range rowIdx {
					is = append(is, i)
					ks = append(ks, part.Pair)
					js = append(js, rowIdx[r])
					vs = append(vs, av*rowVal[r])
				}
			}
		}
	})
	ord := make([]int, len(is))
	for k := range ord {
		ord[k] = k
	}
	sort.SliceStable(ord, func(a, b int) bool {
		if is[ord[a]] != is[ord[b]] {
			return is[ord[a]] < is[ord[b]]
		}
		return ks[ord[a]] < ks[ord[b]]
	})
	coo := sparse.NewCOO(p.A.Rows, p.B.Cols, len(is))
	for _, o := range ord {
		coo.Add(is[o], js[o], vs[o])
	}
	return coo.ToCSR(), nil
}

// Stats summarizes a plan the way the paper's §IV-E walkthrough does.
type PlanStats struct {
	Pairs          int
	ActiveBlocks   int
	Dominators     int
	Normals        int
	LowPerformers  int
	SplitBlocks    int
	CombinedBlocks int
	UngatheredLows int
	LimitedRows    int
	TotalWork      int64
	Threshold      int64
}

// Stats returns the plan's population summary.
func (p *Plan) Stats() PlanStats {
	return PlanStats{
		Pairs:          len(p.Cls.Work),
		ActiveBlocks:   p.Cls.ActiveBlocks,
		Dominators:     len(p.Cls.Dominators),
		Normals:        len(p.Cls.Normals),
		LowPerformers:  len(p.Cls.LowPerformers),
		SplitBlocks:    p.Split.NumBlocks(),
		CombinedBlocks: len(p.Gather.Combined),
		UngatheredLows: len(p.Gather.Ungathered),
		LimitedRows:    len(p.Limit.Limited),
		TotalWork:      p.Cls.TotalWork,
		Threshold:      p.Cls.Threshold,
	}
}

// RecordTrace reports the plan's classification populations, workload
// volume and chosen factors onto a tracing recorder — the counter/gauge
// half of a profile, complementing the phase spans. Nil rec is a no-op.
// Plan-cache hits call it too, so reused-plan profiles still carry the
// classification even though no classification span ran.
func (p *Plan) RecordTrace(rec *trace.Recorder) {
	if !rec.Enabled() {
		return
	}
	st := p.Stats()
	rec.Add(trace.CounterPairs, int64(st.Pairs))
	rec.Add(trace.CounterDominators, int64(st.Dominators))
	rec.Add(trace.CounterNormals, int64(st.Normals))
	rec.Add(trace.CounterLowPerformers, int64(st.LowPerformers))
	rec.Add(trace.CounterSplitBlocks, int64(st.SplitBlocks))
	rec.Add(trace.CounterCombinedBlocks, int64(st.CombinedBlocks))
	rec.Add(trace.CounterLimitedRows, int64(st.LimitedRows))
	rec.Add(trace.CounterFlops, st.TotalWork)
	rec.Add(trace.CounterNNZC, p.NNZC)
	if p.Accum != nil {
		rec.Add(trace.CounterAccumDenseRows, p.Accum.Counts.Dense)
		rec.Add(trace.CounterAccumHashRows, p.Accum.Counts.Hash)
		rec.Add(trace.CounterAccumSortRows, p.Accum.Counts.Sort)
	}
	rec.Set(trace.GaugeAlpha, p.Params.Alpha)
	rec.Set(trace.GaugeBeta, p.Params.Beta)
	rec.Set(trace.GaugeLimitExtraShm, float64(p.Limit.ExtraSharedMem))
	maxFactor := 0
	for _, f := range p.Split.Factor {
		if f > maxFactor {
			maxFactor = f
		}
	}
	rec.Set(trace.GaugeSplitFactorMax, float64(maxFactor))
}

// Validate checks the plan's structural invariants: every active pair is
// covered by exactly one kind of expansion block, every dominator column is
// chunked without gaps or overlap, gathered blocks respect the lane budget,
// and the mapper is consistent with A′. It returns the first violation.
func (p *Plan) Validate() error {
	// Element coverage per pair, accumulated over all blocks.
	covered := make([]int, len(p.Cls.Work))
	p.VisitBlocks(func(kind BlockKind, parts []Partition) {
		for _, part := range parts {
			covered[part.Pair] += part.ColHi - part.ColLo
		}
	})
	for k, w := range p.Cls.Work {
		want := 0
		if w > 0 {
			want = p.ACSC.ColNNZ(k)
		}
		if covered[k] != want {
			return fmt.Errorf("core: pair %d covers %d of %d column elements", k, covered[k], want)
		}
	}
	// Dominator chunking and mapper consistency.
	if p.Split.APrime != nil {
		if err := p.Split.APrime.Validate(); err != nil {
			return fmt.Errorf("core: A': %w", err)
		}
		if len(p.Split.Mapper) != len(p.Split.Blocks) {
			return fmt.Errorf("core: mapper holds %d entries for %d blocks", len(p.Split.Mapper), len(p.Split.Blocks))
		}
		for c, blk := range p.Split.Blocks {
			if p.Split.Mapper[c] != blk.Pair {
				return fmt.Errorf("core: mapper[%d] = %d, block pair %d", c, p.Split.Mapper[c], blk.Pair)
			}
			if blk.ColLo < 0 || blk.ColHi <= blk.ColLo || blk.ColHi > p.ACSC.ColNNZ(blk.Pair) {
				return fmt.Errorf("core: block %d chunk [%d,%d) out of range", c, blk.ColLo, blk.ColHi)
			}
		}
	}
	// Gathered lane budgets.
	for i, cb := range p.Gather.Combined {
		lanes := 0
		for _, k := range cb.Pairs {
			lanes += p.Cls.EffThreads[k]
		}
		if lanes > GatherBlockSize {
			return fmt.Errorf("core: combined block %d packs %d lanes", i, lanes)
		}
	}
	// Limited rows must exceed the threshold.
	for _, r := range p.Limit.Limited {
		if p.Limit.RowWork[r] <= p.Limit.Threshold {
			return fmt.Errorf("core: limited row %d below threshold", r)
		}
	}
	return nil
}
