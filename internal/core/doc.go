// Package core implements the Block Reorganizer optimization pass of Lee et
// al. (ICDE 2020): the host-side preprocessing that turns an outer-product
// spGEMM launch into a load-balanced one.
//
// Given A (consumed column-wise) and B (row-wise), outer-product spGEMM
// assigns the pair (a_{*k}, b_{k*}) to thread block k; block k performs
// nnz(a_{*k})·nnz(b_{k*}) multiply-adds with nnz(b_{k*}) effective threads.
// The pass:
//
//  1. precalculates the block-wise and row-wise workload of the
//     intermediate matrix Ĉ (Classify);
//  2. splits dominator pairs into power-of-two column chunks tracked by a
//     mapper array (PlanSplit — B-Splitting);
//  3. gathers low-performer pairs into combined 32-thread blocks of
//     micro-block partitions (PlanGather — B-Gathering);
//  4. marks long output rows whose merge blocks get extra shared memory so
//     fewer of them co-reside per SM (PlanLimit — B-Limiting).
//
// BuildPlan runs all four and yields a Plan that can be executed
// functionally (Plan.Execute, used to prove the transformation preserves
// the product) and visited block-by-block by the timing layer.
package core
