package core

import (
	"errors"
	"fmt"

	"github.com/blockreorg/blockreorg/sparse"
)

// Default parameter values; see Params.
const (
	DefaultAlpha       = 10
	DefaultBeta        = 10
	DefaultBlockSize   = 256
	DefaultMaxSplit    = 64
	DefaultLimitFactor = 4
	// LimitUnit is the granularity of extra shared memory allocated to a
	// limited merge block (the paper's experiments step by 6144 bytes).
	LimitUnit = 6144
	// WarpSize is the SIMT width assumed by the gathering bins.
	WarpSize = 32
	// GatherBlockSize is the thread count of a combined block: one warp,
	// fully packed, exactly as the paper's example builds them.
	GatherBlockSize = 32
)

// Params tunes the Block Reorganizer. The zero value selects the paper's
// defaults via Normalize.
type Params struct {
	// Alpha divides the dominator threshold: a pair is a dominator when
	// its block-wise workload exceeds nnz(Ĉ)/(NumSMs·Alpha). Larger Alpha
	// lowers the threshold and selects more dominators.
	Alpha float64
	// AutoAlpha derives Alpha from the input's workload distribution via
	// AutoTuneAlpha, overriding the Alpha field.
	AutoAlpha bool
	// Beta divides the merge-limiting threshold the same way, over
	// row-wise intermediate populations: a row is limited when its
	// intermediate population exceeds nnz(Ĉ)/(NumSMs·Beta). The paper
	// fixes Beta = 10.
	Beta float64
	// BlockSize is the configured thread count of normal and split
	// expansion blocks.
	BlockSize int
	// NumSMs is the SM count of the target device; the splitting factor
	// heuristic aims to spread each dominator over at least this many
	// blocks.
	NumSMs int
	// MaxSplit caps the per-vector splitting factor (a power of two).
	MaxSplit int
	// SplitFactorOverride, when positive, forces one fixed splitting
	// factor for every dominator — used by the Figure 11 sweep.
	SplitFactorOverride int
	// LimitFactor is the number of LimitUnit shared-memory increments
	// added to limited merge blocks (the Figure 14 x-axis).
	LimitFactor int
	// GatherPolicy selects how low performers are packed into combined
	// blocks; the zero value is the paper's power-of-two bins.
	GatherPolicy GatherPolicy
	// Accumulator selects the merge strategy assigned to output rows (the
	// plan's AccumPlan); the zero value, sparse.AccumAuto, picks per row
	// from the intermediate populations.
	Accumulator sparse.AccumulatorKind
	// Toggles let the evaluation ablate each technique (Figure 10).
	DisableSplit  bool
	DisableGather bool
	DisableLimit  bool
}

// GatherPolicy selects the B-Gathering packing strategy.
type GatherPolicy uint8

// Gathering policies.
const (
	// GatherPowerOfTwo is the paper's scheme: bins at power-of-two
	// effective-thread ranges, gathering factor 32/2^n.
	GatherPowerOfTwo GatherPolicy = iota
	// GatherFirstFit packs pairs exactly (first-fit decreasing) into
	// 32-lane combined blocks — the alternative the ablation benchmarks
	// compare against.
	GatherFirstFit
)

// Normalize fills zero fields with the paper's defaults and validates the
// rest.
func (p Params) Normalize() (Params, error) {
	if p.Alpha == 0 {
		p.Alpha = DefaultAlpha
	}
	if p.Beta == 0 {
		p.Beta = DefaultBeta
	}
	if p.BlockSize == 0 {
		p.BlockSize = DefaultBlockSize
	}
	if p.NumSMs == 0 {
		p.NumSMs = 30
	}
	if p.MaxSplit == 0 {
		p.MaxSplit = DefaultMaxSplit
	}
	if p.LimitFactor == 0 {
		p.LimitFactor = DefaultLimitFactor
	}
	switch {
	case p.Alpha < 0 || p.Beta < 0:
		return p, errors.New("core: negative threshold divisor")
	case p.BlockSize < WarpSize || p.BlockSize%WarpSize != 0:
		return p, fmt.Errorf("core: block size %d must be a positive multiple of %d", p.BlockSize, WarpSize)
	case p.NumSMs < 1:
		return p, errors.New("core: NumSMs must be positive")
	case p.MaxSplit < 1 || p.MaxSplit&(p.MaxSplit-1) != 0:
		return p, fmt.Errorf("core: MaxSplit %d must be a positive power of two", p.MaxSplit)
	case p.SplitFactorOverride < 0:
		return p, errors.New("core: negative split factor override")
	case p.SplitFactorOverride > 0 && p.SplitFactorOverride&(p.SplitFactorOverride-1) != 0:
		return p, fmt.Errorf("core: split factor override %d must be a power of two", p.SplitFactorOverride)
	case p.LimitFactor < 0:
		return p, errors.New("core: negative limit factor")
	case p.Accumulator > sparse.AccumSort:
		return p, fmt.Errorf("core: unknown accumulator kind %d", p.Accumulator)
	}
	return p, nil
}

// Category classifies one column/row product pair by workload.
type Category uint8

// Workload categories, in the paper's terminology.
const (
	// Empty pairs produce no products and launch no block.
	Empty Category = iota
	// LowPerformer pairs have fewer than WarpSize effective threads.
	LowPerformer
	// Normal pairs are neither dominators nor low performers.
	Normal
	// Dominator pairs exceed the block-wise workload threshold.
	Dominator
)

// String returns the category name used in reports.
func (c Category) String() string {
	switch c {
	case Empty:
		return "empty"
	case LowPerformer:
		return "low-performer"
	case Normal:
		return "normal"
	case Dominator:
		return "dominator"
	default:
		return fmt.Sprintf("category(%d)", uint8(c))
	}
}
