package core

import (
	"github.com/blockreorg/blockreorg/sparse"
)

// Classification is the result of the precalculation and workload
// categorization step (paper §IV-B): per-pair workloads, the dominator
// threshold, and the three bins.
type Classification struct {
	// Work[k] is the block-wise workload of pair k:
	// nnz(a_{*k})·nnz(b_{k*}) intermediate products.
	Work []int64
	// EffThreads[k] is nnz(b_{k*}), the effective thread count of block k.
	EffThreads []int
	// TotalWork is nnz(Ĉ), the total intermediate product count.
	TotalWork int64
	// ActiveBlocks counts pairs with nonzero workload.
	ActiveBlocks int
	// Threshold is the dominator cutoff nnz(Ĉ)/(NumSMs·α): a pair is
	// overloaded when it owns more than 1/α of one SM's fair share of the
	// total workload. (The paper writes the divisor as "#blocks × α"; with
	// all pairs in the denominator the YouTube walkthrough's 713
	// dominators out of 1.1M pairs is unreachable, so we read #blocks as
	// the device's concurrent block capacity, proportional to its SMs.)
	Threshold int64
	// Category[k] is the bin of pair k.
	Category []Category
	// Dominators, Normals and LowPerformers list pair indices per bin in
	// ascending order.
	Dominators    []int
	Normals       []int
	LowPerformers []int
}

// Classify precalculates block-wise workloads of the outer-product pairs of
// A (CSC) and B (CSR) and bins every pair, implementing the paper's
// "Pre-process / Workload classification" stage.
func Classify(a *sparse.CSC, b *sparse.CSR, p Params) (*Classification, error) {
	p, err := p.Normalize()
	if err != nil {
		return nil, err
	}
	work, err := sparse.OuterProductWork(a, b)
	if err != nil {
		return nil, err
	}
	cls := &Classification{
		Work:       work,
		EffThreads: make([]int, len(work)),
		Category:   make([]Category, len(work)),
	}
	for k := range work {
		cls.EffThreads[k] = b.RowNNZ(k)
		if work[k] > 0 {
			cls.ActiveBlocks++
			cls.TotalWork += work[k]
		}
	}
	if cls.ActiveBlocks > 0 {
		cls.Threshold = int64(float64(cls.TotalWork) / (float64(p.NumSMs) * p.Alpha))
		if cls.Threshold < 1 {
			cls.Threshold = 1
		}
	}
	for k, w := range work {
		switch {
		case w == 0:
			cls.Category[k] = Empty
		case w > cls.Threshold:
			cls.Category[k] = Dominator
			cls.Dominators = append(cls.Dominators, k)
		case cls.EffThreads[k] < WarpSize:
			cls.Category[k] = LowPerformer
			cls.LowPerformers = append(cls.LowPerformers, k)
		default:
			cls.Category[k] = Normal
			cls.Normals = append(cls.Normals, k)
		}
	}
	return cls, nil
}
