package core

import (
	"testing"

	"github.com/blockreorg/blockreorg/sparse"
	"github.com/blockreorg/blockreorg/sparse/rmat"
)

func TestAutoTuneAlphaSkewedCatchesHubs(t *testing.T) {
	m, err := rmat.PowerLawCapped(8000, 80000, 1.9, 32, 61)
	if err != nil {
		t.Fatal(err)
	}
	csc := m.ToCSC()
	alpha, err := AutoTuneAlpha(csc, m, 30)
	if err != nil {
		t.Fatal(err)
	}
	if alpha < 1 || alpha > 64 {
		t.Fatalf("alpha %g outside clamp", alpha)
	}
	cls, err := Classify(csc, m, Params{Alpha: alpha, NumSMs: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(cls.Dominators) == 0 {
		t.Fatal("auto alpha found no dominators on a hub-heavy network")
	}
	// The dominator bin must cover roughly the target share of the work:
	// between half and double dominatorWorkShare.
	var domWork int64
	for _, k := range cls.Dominators {
		domWork += cls.Work[k]
	}
	share := float64(domWork) / float64(cls.TotalWork)
	if share < dominatorWorkShare/2 || share > 2.5*dominatorWorkShare {
		t.Fatalf("dominator work share %.2f far from target %.2f", share, dominatorWorkShare)
	}
}

func TestAutoTuneAlphaRegularStaysQuiet(t *testing.T) {
	m, err := rmat.Mesh(20000, 24, 72, 62)
	if err != nil {
		t.Fatal(err)
	}
	csc := m.ToCSC()
	alpha, err := AutoTuneAlpha(csc, m, 30)
	if err != nil {
		t.Fatal(err)
	}
	cls, err := Classify(csc, m, Params{Alpha: alpha, NumSMs: 30})
	if err != nil {
		t.Fatal(err)
	}
	// A flat mesh has no hubs; the tuner must not invent a large
	// dominator population (a handful of boundary pairs is fine).
	if len(cls.Dominators)*2 > cls.ActiveBlocks {
		t.Fatalf("auto alpha classified %d of %d pairs as dominators on a regular mesh",
			len(cls.Dominators), cls.ActiveBlocks)
	}
}

func TestAutoTuneAlphaEmpty(t *testing.T) {
	m := sparse.NewCSR(50, 50)
	alpha, err := AutoTuneAlpha(m.ToCSC(), m, 30)
	if err != nil {
		t.Fatal(err)
	}
	if alpha != DefaultAlpha {
		t.Fatalf("empty matrix alpha %g, want default", alpha)
	}
}

func TestAutoTuneAlphaDeterministic(t *testing.T) {
	m, _ := rmat.PowerLaw(3000, 30000, 2.1, 63)
	csc := m.ToCSC()
	a1, err := AutoTuneAlpha(csc, m, 30)
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := AutoTuneAlpha(csc, m, 30)
	if a1 != a2 {
		t.Fatalf("nondeterministic alpha: %g vs %g", a1, a2)
	}
	// More SMs spread the fair share thinner, lowering the implied alpha
	// for the same boundary workload.
	a3, _ := AutoTuneAlpha(csc, m, 80)
	if a3 > a1 {
		t.Fatalf("alpha rose with SM count: %g -> %g", a1, a3)
	}
}
