package core

import (
	"strings"
	"testing"

	"github.com/blockreorg/blockreorg/sparse"
	"github.com/blockreorg/blockreorg/sparse/rmat"
)

// denseOnes builds an n×n all-ones CSR: every pair has workload n², so
// classification extremes are easy to force through Alpha.
func denseOnes(n int) *sparse.CSR {
	m := sparse.NewCSR(n, n)
	idx := make([]int, n)
	val := make([]float64, n)
	for j := 0; j < n; j++ {
		idx[j], val[j] = j, 1
	}
	for i := 0; i < n; i++ {
		m.AppendRow(i, idx, val)
	}
	return m
}

func mustPlan(t *testing.T, a, b *sparse.CSR, p Params) *Plan {
	t.Helper()
	plan, err := BuildPlan(a, b, p)
	if err != nil {
		t.Fatalf("BuildPlan: %v", err)
	}
	return plan
}

func TestVerifyPlanRMAT(t *testing.T) {
	m, err := rmat.PowerLaw(1200, 18000, 2.05, 41)
	if err != nil {
		t.Fatal(err)
	}
	plan := mustPlan(t, m, m, Params{})
	if err := VerifyPlan(plan); err != nil {
		t.Fatalf("VerifyPlan on a freshly built plan: %v", err)
	}
	if err := VerifyPlanOnDevice(plan, 96*1024); err != nil {
		t.Fatalf("VerifyPlanOnDevice with 96KB: %v", err)
	}
}

func TestVerifyPlanEmptyMatrix(t *testing.T) {
	for name, n := range map[string]int{"zero-dim": 0, "no entries": 5} {
		a := sparse.NewCSR(n, n)
		plan := mustPlan(t, a, a, Params{})
		if err := VerifyPlan(plan); err != nil {
			t.Errorf("%s: VerifyPlan = %v", name, err)
		}
	}
}

func TestVerifyPlanSingleRowAndColumn(t *testing.T) {
	// row vector (1×4) times column vector (4×1): one pair per column of A.
	row := sparse.NewCSR(1, 4)
	row.AppendRow(0, []int{0, 1, 2, 3}, []float64{1, 2, 3, 4})
	col := sparse.NewCSR(4, 1)
	for i := 0; i < 4; i++ {
		col.AppendRow(i, []int{0}, []float64{1})
	}
	plan := mustPlan(t, row, col, Params{})
	if err := VerifyPlan(plan); err != nil {
		t.Fatalf("row×col: %v", err)
	}
	plan = mustPlan(t, col, row, Params{})
	if err := VerifyPlan(plan); err != nil {
		t.Fatalf("col×row: %v", err)
	}
}

func TestVerifyPlanAllDominators(t *testing.T) {
	m := denseOnes(4)
	// Huge Alpha drives the threshold to its floor of 1; every pair's
	// workload of 16 exceeds it, so all pairs split.
	plan := mustPlan(t, m, m, Params{Alpha: 1e9})
	if got := len(plan.Cls.Dominators); got != 4 {
		t.Fatalf("want all 4 pairs dominator, got %d", got)
	}
	if err := VerifyPlan(plan); err != nil {
		t.Fatalf("all-dominator plan: %v", err)
	}
}

func TestVerifyPlanAllLowPerformers(t *testing.T) {
	m := denseOnes(4)
	// Tiny Alpha pushes the threshold above every workload; with 4
	// effective threads (< warp size) every pair is a low performer.
	plan := mustPlan(t, m, m, Params{Alpha: 1e-9})
	if got := len(plan.Cls.LowPerformers); got != 4 {
		t.Fatalf("want all 4 pairs low performers, got %d", got)
	}
	if len(plan.Split.Blocks) != 0 {
		t.Fatalf("low-performer plan has %d split blocks", len(plan.Split.Blocks))
	}
	if err := VerifyPlan(plan); err != nil {
		t.Fatalf("all-low-performer plan: %v", err)
	}
}

// TestVerifyPlanDetectsMapperCorruption is the headline guarantee: a
// corrupted mapper entry — the array that tells the merge stage which
// output column each split block belongs to — must not verify.
func TestVerifyPlanDetectsMapperCorruption(t *testing.T) {
	m := denseOnes(4)
	plan := mustPlan(t, m, m, Params{Alpha: 1e9})
	if len(plan.Split.Mapper) < 2 {
		t.Fatalf("fixture produced only %d split blocks", len(plan.Split.Mapper))
	}
	good := plan.Split.Mapper[0]
	plan.Split.Mapper[0] = plan.Split.Mapper[len(plan.Split.Mapper)-1]
	if plan.Split.Mapper[0] == good {
		t.Fatal("corruption did not change the entry")
	}
	err := VerifyPlan(plan)
	if err == nil {
		t.Fatal("VerifyPlan accepted a corrupted mapper")
	}
	if !strings.Contains(err.Error(), "mapper") {
		t.Fatalf("error does not implicate the mapper: %v", err)
	}
	plan.Split.Mapper[0] = good
	if err := VerifyPlan(plan); err != nil {
		t.Fatalf("restored plan no longer verifies: %v", err)
	}
}

func TestVerifyPlanDetectsAPrimeCorruption(t *testing.T) {
	m, err := rmat.PowerLaw(800, 12000, 2.0, 43)
	if err != nil {
		t.Fatal(err)
	}
	plan := mustPlan(t, m, m, Params{Alpha: 1e6})
	if plan.Split.APrime == nil || plan.Split.APrime.NNZ() == 0 {
		t.Fatal("fixture produced no split elements")
	}
	// Flip one A′ value: nnz is conserved, structure is intact, only the
	// bitwise chunk comparison can catch it.
	idx, val := plan.Split.APrime.Col(0)
	_ = idx
	val[0] += 1
	if err := VerifyPlan(plan); err == nil {
		t.Fatal("VerifyPlan accepted a corrupted A' value")
	}
}

func TestVerifyPlanDetectsWorkloadCorruption(t *testing.T) {
	m, err := rmat.PowerLaw(600, 7000, 2.1, 44)
	if err != nil {
		t.Fatal(err)
	}
	plan := mustPlan(t, m, m, Params{})

	plan.Cls.Work[0]++
	if err := VerifyPlan(plan); err == nil {
		t.Fatal("VerifyPlan accepted a corrupted block-wise workload")
	}
	plan.Cls.Work[0]--

	plan.Limit.RowWork[0]++
	if err := VerifyPlan(plan); err == nil {
		t.Fatal("VerifyPlan accepted a corrupted row-wise population (nnz(Ĉ) conservation)")
	}
	plan.Limit.RowWork[0]--

	if err := VerifyPlan(plan); err != nil {
		t.Fatalf("restored plan no longer verifies: %v", err)
	}
}

func TestVerifyPlanDetectsGatherCorruption(t *testing.T) {
	m := denseOnes(4)
	plan := mustPlan(t, m, m, Params{Alpha: 1e-9})
	if len(plan.Gather.Combined) == 0 {
		t.Fatal("fixture produced no combined blocks")
	}
	// Duplicate a gathered pair: coverage is no longer a bijection.
	cb := &plan.Gather.Combined[0]
	cb.Pairs = append(cb.Pairs, cb.Pairs[0])
	if err := VerifyPlan(plan); err == nil {
		t.Fatal("VerifyPlan accepted a twice-gathered pair")
	}
}

func TestVerifyPlanOnDeviceSharedMemBound(t *testing.T) {
	m, err := rmat.PowerLaw(1000, 15000, 2.0, 45)
	if err != nil {
		t.Fatal(err)
	}
	plan := mustPlan(t, m, m, Params{LimitFactor: 8})
	if err := VerifyPlan(plan); err != nil {
		t.Fatalf("VerifyPlan: %v", err)
	}
	if plan.Limit.ExtraSharedMem == 0 {
		t.Skip("no extra shared memory requested by this fixture")
	}
	if err := VerifyPlanOnDevice(plan, plan.Limit.ExtraSharedMem-1); err == nil {
		t.Fatal("VerifyPlanOnDevice accepted a demand over the per-block limit")
	}
	if err := VerifyPlanOnDevice(plan, plan.Limit.ExtraSharedMem); err != nil {
		t.Fatalf("VerifyPlanOnDevice rejected a fitting demand: %v", err)
	}
}

func TestVerifyPlanNil(t *testing.T) {
	if err := VerifyPlan(nil); err == nil {
		t.Fatal("nil plan verified")
	}
	if err := VerifyPlan(&Plan{}); err == nil {
		t.Fatal("phase-less plan verified")
	}
}
