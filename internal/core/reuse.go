package core

import (
	"errors"
	"fmt"

	"github.com/blockreorg/blockreorg/sparse"
)

// Plan reuse: the whole Block Reorganizer preprocessing pipeline —
// precalculation, classification, B-Splitting, B-Gathering and B-Limiting —
// depends only on the sparsity structure of the operands, never on their
// numeric values. A long-running service multiplying against the same large
// sparse network can therefore build the plan once and reuse it across
// requests, paying only for value rebinding. Rebind is that entry point: it
// produces a plan bound to fresh operand objects (possibly carrying new
// values over the same pattern), rebuilding exactly the two value-carrying
// artifacts — A in column orientation and the temporary split matrix A′ —
// in O(nnz(A)) instead of re-running the O(flops) symbolic sweeps and the
// classification.

// BoundTo reports whether the plan was built for (or rebound to) exactly
// these operand objects. Kernels use it to decide whether a caller-supplied
// plan may drive this multiplication.
func (p *Plan) BoundTo(a, b *sparse.CSR) bool {
	return p != nil && p.A == a && p.B == b
}

// Rebind returns a copy of the plan bound to new operands that carry the
// same sparsity structure as the ones it was built for. The classification,
// split layout, gather packing and limit set are shared with the original
// (they are immutable after construction and structure-only); the column
// orientation of A and the split matrix A′ are rebuilt from the new values.
//
// Rebind verifies the cheap structural invariants — dimensions, nnz totals,
// per-row populations of B and per-column populations of A — and rejects
// operands that fail them. Full pattern equality is the caller's contract,
// normally discharged by matching sparse.StructureFingerprint digests;
// Paranoid mode additionally re-verifies the rebound plan on the device.
//
// The original plan is not modified; both plans may execute concurrently.
func (p *Plan) Rebind(a, b *sparse.CSR) (*Plan, error) {
	if p == nil {
		return nil, errors.New("core: rebind of nil plan")
	}
	if a == nil || b == nil {
		return nil, errors.New("core: nil operand")
	}
	if p.BoundTo(a, b) {
		return p, nil
	}
	if a.Rows != p.A.Rows || a.Cols != p.A.Cols || b.Rows != p.B.Rows || b.Cols != p.B.Cols {
		return nil, fmt.Errorf("core: cannot rebind plan built for %dx%d × %dx%d to %dx%d × %dx%d",
			p.A.Rows, p.A.Cols, p.B.Rows, p.B.Cols, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if a.NNZ() != p.A.NNZ() || b.NNZ() != p.B.NNZ() {
		return nil, fmt.Errorf("core: cannot rebind plan built for nnz (%d, %d) to nnz (%d, %d)",
			p.A.NNZ(), p.B.NNZ(), a.NNZ(), b.NNZ())
	}
	for i := 0; i < b.Rows; i++ {
		if b.RowNNZ(i) != p.B.RowNNZ(i) {
			return nil, fmt.Errorf("core: rebind operand B row %d holds %d entries, plan expects %d",
				i, b.RowNNZ(i), p.B.RowNNZ(i))
		}
	}
	acsc := a.ToCSC()
	for j := 0; j < acsc.Cols; j++ {
		if acsc.ColNNZ(j) != p.ACSC.ColNNZ(j) {
			return nil, fmt.Errorf("core: rebind operand A column %d holds %d entries, plan expects %d",
				j, acsc.ColNNZ(j), p.ACSC.ColNNZ(j))
		}
	}
	q := *p
	q.A, q.ACSC, q.B = a, acsc, b
	// A′ holds copies of the dominator column values; rebuild it so the
	// rebound plan multiplies with the new operand's numbers. The chunk
	// boundaries are safe: every column population was just checked.
	split := *p.Split
	split.buildAPrime(acsc)
	q.Split = &split
	return &q, nil
}
