package core

import (
	"testing"

	"github.com/blockreorg/blockreorg/internal/datasets"
	"github.com/blockreorg/blockreorg/internal/parallel"
	"github.com/blockreorg/blockreorg/sparse"
)

// TestGridBitIdentical sweeps the Table II dataset grid (downscaled) and
// requires both parallel engines to reproduce their sequential oracles
// exactly — tolerance zero, structure and values to the last bit. The
// grid spans both families: Florida's banded regular meshes and
// Stanford's capped power-law networks, so the weighted chunking, the
// per-chunk arenas and the merge all see regular and hub-skewed shapes.
func TestGridBitIdentical(t *testing.T) {
	const scale = 100
	ex := parallel.NewExecutor(6)
	for _, spec := range datasets.RealWorld() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			m, err := spec.Generate(scale)
			if err != nil {
				t.Fatal(err)
			}

			// Gustavson engine: chunked two-phase MultiplyOn against the
			// sequential Multiply.
			want, err := sparse.Multiply(m, m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sparse.MultiplyOn(m, m, ex)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want, 0) {
				t.Fatal("MultiplyOn not bit-identical to Multiply")
			}

			// Reorganizer engine: parallel ExecuteOn against the
			// sequential Execute of the same plan.
			plan, err := BuildPlan(m, m, Params{})
			if err != nil {
				t.Fatal(err)
			}
			seq, err := plan.Execute(0)
			if err != nil {
				t.Fatal(err)
			}
			par, err := plan.ExecuteOn(ex, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := par.Validate(); err != nil {
				t.Fatal(err)
			}
			if !par.Equal(seq, 0) {
				t.Fatal("ExecuteOn not bit-identical to Execute")
			}
		})
	}
}
