package core

import (
	"testing"

	"github.com/blockreorg/blockreorg/sparse"
	"github.com/blockreorg/blockreorg/sparse/rmat"
)

// reuseOperands builds a skewed test pair large enough to have dominators,
// normals and low performers.
func reuseOperands(t *testing.T) (*sparse.CSR, *sparse.CSR) {
	t.Helper()
	a, err := rmat.PowerLaw(400, 6000, 2.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	return a, a
}

func TestPlanRebindSameStructureNewValues(t *testing.T) {
	a, b := reuseOperands(t)
	plan, err := BuildPlan(a, b, Params{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sparse.Multiply(a, b)
	if err != nil {
		t.Fatal(err)
	}

	// New operand objects: identical structure, different values.
	a2 := a.Clone()
	a2.Scale(3)
	b2 := b.Clone()
	b2.Fill(0.5)

	re, err := plan.Rebind(a2, b2)
	if err != nil {
		t.Fatal(err)
	}
	if !re.BoundTo(a2, b2) {
		t.Fatal("rebound plan not bound to new operands")
	}
	if plan.BoundTo(a2, b2) {
		t.Fatal("original plan claims the new operands")
	}
	if err := re.Validate(); err != nil {
		t.Fatalf("rebound plan invalid: %v", err)
	}
	if err := VerifyPlan(re); err != nil {
		t.Fatalf("rebound plan fails verification: %v", err)
	}

	// The rebound plan must multiply with the NEW values.
	got, err := re.Execute(0)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := sparse.Multiply(a2, b2)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want2, 1e-9) {
		t.Fatal("rebound plan computed the wrong product")
	}

	// The original plan still multiplies with the OLD values.
	got0, err := plan.Execute(0)
	if err != nil {
		t.Fatal(err)
	}
	if !got0.Equal(want, 1e-9) {
		t.Fatal("original plan corrupted by rebind")
	}

	// Structure-only phases are shared, value-bound ones are not.
	if re.Cls != plan.Cls || re.Gather != plan.Gather || re.Limit != plan.Limit {
		t.Fatal("rebind did not share the structure-only phases")
	}
	if re.Split == plan.Split || re.Split.APrime == plan.Split.APrime {
		t.Fatal("rebind shared the value-carrying split matrix")
	}
}

func TestPlanRebindSameOperandsIsIdentity(t *testing.T) {
	a, b := reuseOperands(t)
	plan, err := BuildPlan(a, b, Params{})
	if err != nil {
		t.Fatal(err)
	}
	re, err := plan.Rebind(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if re != plan {
		t.Fatal("rebinding to the bound operands should return the plan unchanged")
	}
}

func TestPlanRebindRejectsStructureMismatch(t *testing.T) {
	a, b := reuseOperands(t)
	plan, err := BuildPlan(a, b, Params{})
	if err != nil {
		t.Fatal(err)
	}

	// Different dimensions.
	small := sparse.NewCSR(3, 3)
	if _, err := plan.Rebind(small, small); err == nil {
		t.Fatal("rebind accepted operands of different dimensions")
	}

	// Same dimensions and nnz, one entry moved between columns (changes
	// the column populations the split layout depends on).
	moved := a.ToCOO()
	moved.J[0] = (moved.J[0] + 1) % moved.Cols
	a3 := moved.ToCSR()
	if a3.NNZ() == a.NNZ() {
		if _, err := plan.Rebind(a3, b); err == nil {
			t.Fatal("rebind accepted an operand with a moved entry")
		}
	}

	// Nil operands.
	if _, err := plan.Rebind(nil, b); err == nil {
		t.Fatal("rebind accepted a nil operand")
	}
}
