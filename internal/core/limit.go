package core

import (
	"github.com/blockreorg/blockreorg/sparse"
)

// LimitPlan is the outcome of B-Limiting: the merge blocks of long output
// rows are granted extra shared memory so fewer of them co-reside on an SM,
// reducing L2 contention during the atomic accumulation (paper §IV-D).
type LimitPlan struct {
	// Threshold is the row-wise cutoff: a row is limited when its
	// intermediate population exceeds β times the mean over non-empty
	// rows. (Read literally, the paper's nnz(Ĉ)/(#blocks·β) with β=10 is
	// inconsistent with its own YouTube walkthrough — 12657 limited rows
	// each above 493k products would overrun nnz(Ĉ) forty-fold — so we
	// adopt the reading that reproduces the reported populations.)
	Threshold int64
	// Limited lists output row indices whose intermediate population
	// exceeds the threshold, ascending.
	Limited []int
	// LimitedWork is the total intermediate population of limited rows.
	LimitedWork int64
	// ExtraSharedMem is the additional shared memory in bytes attached to
	// each limited merge block: LimitFactor × LimitUnit.
	ExtraSharedMem int
	// RowWork[i] is the intermediate population of output row i (the
	// row-wise nnz of Ĉ) for all rows; merge kernels are built from it.
	RowWork []int64
}

// PlanLimit computes the B-Limiting plan for C = A×B from the row-wise
// intermediate populations. With DisableLimit no rows are limited but the
// row populations are still returned for merge-kernel construction.
func PlanLimit(a, b *sparse.CSR, cls *Classification, p Params) (*LimitPlan, error) {
	rowWork, err := sparse.IntermediateRowNNZ(a, b)
	if err != nil {
		return nil, err
	}
	return PlanLimitFrom(rowWork, cls, p)
}

// PlanLimitFrom is PlanLimit over precomputed row-wise intermediate
// populations.
func PlanLimitFrom(rowWork []int64, cls *Classification, p Params) (*LimitPlan, error) {
	p, err := p.Normalize()
	if err != nil {
		return nil, err
	}
	plan := &LimitPlan{
		RowWork:        rowWork,
		ExtraSharedMem: p.LimitFactor * LimitUnit,
	}
	if cls.ActiveBlocks == 0 || p.DisableLimit {
		return plan, nil
	}
	activeRows := 0
	for _, w := range rowWork {
		if w > 0 {
			activeRows++
		}
	}
	if activeRows == 0 {
		return plan, nil
	}
	plan.Threshold = int64(float64(cls.TotalWork) / float64(activeRows) * p.Beta)
	if plan.Threshold < 1 {
		plan.Threshold = 1
	}
	for i, w := range rowWork {
		if w > plan.Threshold {
			plan.Limited = append(plan.Limited, i)
			plan.LimitedWork += w
		}
	}
	return plan, nil
}
