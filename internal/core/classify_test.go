package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"github.com/blockreorg/blockreorg/sparse"
	"github.com/blockreorg/blockreorg/sparse/rmat"
)

func testRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 7)) }

func randomCSR(rng *rand.Rand, rows, cols int, density float64) *sparse.CSR {
	coo := sparse.NewCOO(rows, cols, 0)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				coo.Add(i, j, rng.Float64()+0.5)
			}
		}
	}
	return coo.ToCSR()
}

func TestClassifyPartitionsPairs(t *testing.T) {
	f := func(seed uint64) bool {
		rng := testRNG(seed)
		n := 2 + rng.IntN(30)
		a := randomCSR(rng, n, n, 0.3)
		b := randomCSR(rng, n, n, 0.3)
		cls, err := Classify(a.ToCSC(), b, Params{})
		if err != nil {
			return false
		}
		// Every pair appears in exactly one bin, consistent with Category.
		counted := len(cls.Dominators) + len(cls.Normals) + len(cls.LowPerformers)
		empties := 0
		var work int64
		for k, w := range cls.Work {
			if w == 0 {
				empties++
				if cls.Category[k] != Empty {
					return false
				}
			}
			work += w
		}
		if counted+empties != len(cls.Work) {
			return false
		}
		if work != cls.TotalWork {
			return false
		}
		if cls.ActiveBlocks != len(cls.Work)-empties {
			return false
		}
		// Bin membership matches the rules.
		for _, k := range cls.Dominators {
			if cls.Work[k] <= cls.Threshold {
				return false
			}
		}
		for _, k := range cls.LowPerformers {
			if cls.EffThreads[k] >= WarpSize || cls.Work[k] > cls.Threshold || cls.Work[k] == 0 {
				return false
			}
		}
		for _, k := range cls.Normals {
			if cls.Work[k] == 0 || cls.Work[k] > cls.Threshold || cls.EffThreads[k] < WarpSize {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestClassifySkewedFindsDominators(t *testing.T) {
	m, err := rmat.PowerLaw(4000, 40000, 2.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	cls, err := Classify(m.ToCSC(), m, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cls.Dominators) == 0 {
		t.Fatal("no dominators on a power-law matrix")
	}
	if len(cls.LowPerformers) == 0 {
		t.Fatal("no low performers on a power-law matrix")
	}
	// Dominators must be few relative to active blocks (the paper relies
	// on this: "the number of dominator pairs is typically small").
	if len(cls.Dominators)*10 > cls.ActiveBlocks {
		t.Fatalf("dominators %d of %d active blocks — too many", len(cls.Dominators), cls.ActiveBlocks)
	}
}

func TestClassifyAlphaMonotone(t *testing.T) {
	m, _ := rmat.PowerLaw(3000, 30000, 2.2, 5)
	csc := m.ToCSC()
	low, _ := Classify(csc, m, Params{Alpha: 4})
	high, _ := Classify(csc, m, Params{Alpha: 64})
	// Larger alpha -> lower threshold -> at least as many dominators.
	if len(high.Dominators) < len(low.Dominators) {
		t.Fatalf("alpha=64 found %d dominators, alpha=4 found %d", len(high.Dominators), len(low.Dominators))
	}
	if high.Threshold >= low.Threshold {
		t.Fatalf("threshold not decreasing in alpha: %d vs %d", high.Threshold, low.Threshold)
	}
}

func TestClassifyEmptyMatrix(t *testing.T) {
	a := sparse.NewCSR(10, 10)
	cls, err := Classify(a.ToCSC(), a, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if cls.ActiveBlocks != 0 || cls.TotalWork != 0 || len(cls.Dominators) != 0 {
		t.Fatalf("empty classification wrong: %+v", cls)
	}
}

func TestClassifyShapeMismatch(t *testing.T) {
	a := sparse.NewCSR(4, 5).ToCSC()
	b := sparse.NewCSR(6, 4)
	if _, err := Classify(a, b, Params{}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestParamsNormalizeDefaults(t *testing.T) {
	p, err := Params{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if p.Alpha != DefaultAlpha || p.Beta != DefaultBeta || p.BlockSize != DefaultBlockSize ||
		p.MaxSplit != DefaultMaxSplit || p.LimitFactor != DefaultLimitFactor {
		t.Fatalf("defaults wrong: %+v", p)
	}
}

func TestParamsNormalizeRejects(t *testing.T) {
	bad := []Params{
		{Alpha: -1},
		{Beta: -2},
		{BlockSize: 100},          // not a multiple of 32
		{BlockSize: -32},          // negative
		{MaxSplit: 48},            // not a power of two
		{SplitFactorOverride: 3},  // not a power of two
		{SplitFactorOverride: -1}, // negative
		{LimitFactor: -1},         // negative
		{NumSMs: -5},              // negative
	}
	for i, p := range bad {
		if _, err := p.Normalize(); err == nil {
			t.Errorf("case %d: %+v accepted", i, p)
		}
	}
}

func TestCategoryString(t *testing.T) {
	names := map[Category]string{Empty: "empty", LowPerformer: "low-performer", Normal: "normal", Dominator: "dominator"}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
	if Category(99).String() == "" {
		t.Error("unknown category empty")
	}
}
