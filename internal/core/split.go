package core

import (
	"github.com/blockreorg/blockreorg/sparse"
)

// SplitBlock is one sub-block produced by B-Splitting: a contiguous chunk
// [ColLo, ColHi) of the elements of A's column Pair, multiplied against the
// whole of B's row Pair. ColLo/ColHi are offsets into the column's element
// list (0 ≤ ColLo < ColHi ≤ nnz(a_{*Pair})).
type SplitBlock struct {
	Pair         int
	ColLo, ColHi int
}

// SplitPlan is the outcome of B-Splitting over all dominator pairs.
//
// The plan materializes the paper's construction: the dominator columns are
// copied into a temporary matrix A′ whose column pointers are expanded so
// each sub-block is an ordinary column, and Mapper records which original
// pair each A′ column multiplies (so the right row of B is fetched).
type SplitPlan struct {
	// Factor[i] is the splitting factor (a power of two) chosen for
	// Dominators[i] of the classification.
	Factor []int
	// Blocks lists every sub-block in dominator order.
	Blocks []SplitBlock
	// APrime is the temporary matrix A′ holding the split dominator
	// columns; column c of APrime corresponds to Blocks[c] and Mapper[c].
	APrime *sparse.CSC
	// Mapper[c] is the original pair index of A′ column c — the paper's
	// mapper array.
	Mapper []int
}

// PlanSplit applies B-Splitting to the dominator pairs of cls. Each
// dominator's column vector is divided into the smallest power-of-two
// number of chunks that brings the per-chunk workload under the dominator
// threshold, spreads the pair over at least NumSMs blocks, and never
// exceeds MaxSplit or the column population. Params.SplitFactorOverride
// forces a fixed factor instead (the Figure 11 sweep).
func PlanSplit(cls *Classification, a *sparse.CSC, p Params) (*SplitPlan, error) {
	p, err := p.Normalize()
	if err != nil {
		return nil, err
	}
	plan := &SplitPlan{Factor: make([]int, len(cls.Dominators))}
	if p.DisableSplit {
		// Dominators stay whole: one block per pair, factor 1.
		for i, k := range cls.Dominators {
			plan.Factor[i] = 1
			plan.Blocks = append(plan.Blocks, SplitBlock{Pair: k, ColLo: 0, ColHi: a.ColNNZ(k)})
		}
		plan.buildAPrime(a)
		return plan, nil
	}
	for i, k := range cls.Dominators {
		colNNZ := a.ColNNZ(k)
		factor := p.SplitFactorOverride
		if factor == 0 {
			factor = chooseFactor(cls.Work[k], cls.Threshold, colNNZ, p)
		}
		if factor > colNNZ {
			factor = prevPow2(colNNZ)
		}
		if factor < 1 {
			factor = 1
		}
		plan.Factor[i] = factor
		// Chunk the column elements evenly; the first (colNNZ mod factor)
		// chunks take one extra element.
		base := colNNZ / factor
		extra := colNNZ % factor
		lo := 0
		for c := 0; c < factor; c++ {
			hi := lo + base
			if c < extra {
				hi++
			}
			if hi > lo {
				plan.Blocks = append(plan.Blocks, SplitBlock{Pair: k, ColLo: lo, ColHi: hi})
			}
			lo = hi
		}
	}
	plan.buildAPrime(a)
	return plan, nil
}

// minSplitWork is the smallest per-sub-block workload splitting may
// produce: shredding a dominator into blocks below this size trades load
// balance for pure launch overhead.
const minSplitWork = 4096

// chooseFactor implements the paper's greedy power-of-two heuristic: double
// the factor until the per-chunk workload falls below the dominator
// threshold; for dominators heavy enough to feed every SM a useful chunk,
// keep doubling until the pair covers at least the SM count. The factor is
// capped at MaxSplit and never shreds chunks below minSplitWork.
func chooseFactor(work, threshold int64, colNNZ int, p Params) int {
	factor := 1
	for factor < p.MaxSplit && work/int64(factor) > threshold {
		factor *= 2
	}
	for factor < p.MaxSplit && factor < p.NumSMs && work/int64(factor*2) >= minSplitWork {
		factor *= 2
	}
	for factor > 1 && work/int64(factor) < minSplitWork {
		factor /= 2
	}
	if factor > p.MaxSplit {
		factor = p.MaxSplit
	}
	return factor
}

// prevPow2 returns the largest power of two ≤ n (and 1 for n < 1).
func prevPow2(n int) int {
	if n < 1 {
		return 1
	}
	f := 1
	for f*2 <= n {
		f *= 2
	}
	return f
}

// buildAPrime copies the dominator sub-blocks into the temporary matrix A′,
// expanding the column pointers exactly as the paper's Figure 5 does, and
// fills the mapper array.
func (p *SplitPlan) buildAPrime(a *sparse.CSC) {
	ap := sparse.NewCSC(a.Rows, len(p.Blocks))
	p.Mapper = make([]int, len(p.Blocks))
	for c, blk := range p.Blocks {
		idx, val := a.Col(blk.Pair)
		ap.AppendCol(c, idx[blk.ColLo:blk.ColHi], val[blk.ColLo:blk.ColHi])
		p.Mapper[c] = blk.Pair
	}
	p.APrime = ap
}

// NumBlocks returns the number of sub-blocks the plan launches.
func (p *SplitPlan) NumBlocks() int { return len(p.Blocks) }
