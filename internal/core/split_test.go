package core

import (
	"testing"
	"testing/quick"

	"github.com/blockreorg/blockreorg/sparse"
	"github.com/blockreorg/blockreorg/sparse/rmat"
)

// splitInput bundles a test matrix in both orientations.
type splitInput struct {
	csr *sparse.CSR
	csc *sparse.CSC
}

// skewedFixture returns a power-law matrix and its classification.
func skewedFixture(t *testing.T, n, nnz int, seed uint64) (*Classification, *splitInput) {
	t.Helper()
	m, err := rmat.PowerLaw(n, nnz, 2.05, seed)
	if err != nil {
		t.Fatal(err)
	}
	csc := m.ToCSC()
	cls, err := Classify(csc, m, Params{})
	if err != nil {
		t.Fatal(err)
	}
	return cls, &splitInput{csr: m, csc: csc}
}

func TestSplitCoversDominatorsExactly(t *testing.T) {
	cls, in := skewedFixture(t, 3000, 45000, 9)
	if len(cls.Dominators) == 0 {
		t.Skip("no dominators drawn")
	}
	plan, err := PlanSplit(cls, in.csc, Params{})
	if err != nil {
		t.Fatal(err)
	}
	// Group blocks by pair and verify disjoint, complete coverage.
	coverage := make(map[int][]SplitBlock)
	for _, blk := range plan.Blocks {
		coverage[blk.Pair] = append(coverage[blk.Pair], blk)
	}
	if len(coverage) != len(cls.Dominators) {
		t.Fatalf("blocks cover %d pairs, want %d", len(coverage), len(cls.Dominators))
	}
	for _, k := range cls.Dominators {
		blocks := coverage[k]
		next := 0
		for _, blk := range blocks {
			if blk.ColLo != next {
				t.Fatalf("pair %d: gap or overlap at element %d (got %d)", k, next, blk.ColLo)
			}
			if blk.ColHi <= blk.ColLo {
				t.Fatalf("pair %d: empty block", k)
			}
			next = blk.ColHi
		}
		if next != in.csc.ColNNZ(k) {
			t.Fatalf("pair %d: covered %d of %d elements", k, next, in.csc.ColNNZ(k))
		}
	}
}

func TestSplitFactorsArePowersOfTwo(t *testing.T) {
	cls, in := skewedFixture(t, 3000, 45000, 10)
	plan, err := PlanSplit(cls, in.csc, Params{})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range plan.Factor {
		if f < 1 || f&(f-1) != 0 {
			t.Fatalf("dominator %d factor %d not a power of two", i, f)
		}
		if f > DefaultMaxSplit {
			t.Fatalf("factor %d exceeds MaxSplit", f)
		}
	}
}

func TestSplitOverrideForcesFactor(t *testing.T) {
	cls, in := skewedFixture(t, 3000, 45000, 11)
	if len(cls.Dominators) == 0 {
		t.Skip("no dominators drawn")
	}
	plan, err := PlanSplit(cls, in.csc, Params{SplitFactorOverride: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range cls.Dominators {
		want := 8
		if n := in.csc.ColNNZ(k); n < 8 {
			want = prevPow2(n)
		}
		if plan.Factor[i] != want {
			t.Fatalf("dominator %d factor %d, want %d", i, plan.Factor[i], want)
		}
	}
}

func TestSplitDisabledKeepsBlocksWhole(t *testing.T) {
	cls, in := skewedFixture(t, 3000, 45000, 12)
	plan, err := PlanSplit(cls, in.csc, Params{DisableSplit: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Blocks) != len(cls.Dominators) {
		t.Fatalf("disabled split launched %d blocks for %d dominators", len(plan.Blocks), len(cls.Dominators))
	}
	for _, blk := range plan.Blocks {
		if blk.ColLo != 0 || blk.ColHi != in.csc.ColNNZ(blk.Pair) {
			t.Fatal("disabled split still chunked a column")
		}
	}
}

// The mapper array and A' must reproduce the original dominator columns.
func TestSplitAPrimeMatchesMapper(t *testing.T) {
	cls, in := skewedFixture(t, 2000, 30000, 13)
	plan, err := PlanSplit(cls, in.csc, Params{})
	if err != nil {
		t.Fatal(err)
	}
	ap := plan.APrime
	if err := ap.Validate(); err != nil {
		t.Fatalf("A' invalid: %v", err)
	}
	if ap.Cols != len(plan.Blocks) || len(plan.Mapper) != len(plan.Blocks) {
		t.Fatalf("A' has %d columns for %d blocks", ap.Cols, len(plan.Blocks))
	}
	for c, blk := range plan.Blocks {
		if plan.Mapper[c] != blk.Pair {
			t.Fatalf("mapper[%d] = %d, want %d", c, plan.Mapper[c], blk.Pair)
		}
		gotIdx, gotVal := ap.Col(c)
		origIdx, origVal := in.csc.Col(blk.Pair)
		if len(gotIdx) != blk.ColHi-blk.ColLo {
			t.Fatalf("A' column %d has %d elements, want %d", c, len(gotIdx), blk.ColHi-blk.ColLo)
		}
		for e := range gotIdx {
			if gotIdx[e] != origIdx[blk.ColLo+e] || gotVal[e] != origVal[blk.ColLo+e] {
				t.Fatalf("A' column %d element %d differs from original", c, e)
			}
		}
	}
}

func TestChooseFactorProperties(t *testing.T) {
	f := func(work int64, threshold int64, colNNZ int) bool {
		if work <= 0 || threshold <= 0 || colNNZ <= 0 {
			return true
		}
		p, _ := Params{}.Normalize()
		factor := chooseFactor(work, threshold, colNNZ, p)
		if factor < 1 || factor > p.MaxSplit || factor&(factor-1) != 0 {
			return false
		}
		// Either the chunk workload is under threshold, or the cap binds.
		return work/int64(factor) <= threshold || factor == p.MaxSplit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPrevPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 2, 4: 4, 5: 4, 31: 16, 32: 32, 1000: 512}
	for in, want := range cases {
		if got := prevPow2(in); got != want {
			t.Errorf("prevPow2(%d) = %d, want %d", in, got, want)
		}
	}
}
