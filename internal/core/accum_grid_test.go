package core

import (
	"testing"

	"github.com/blockreorg/blockreorg/internal/datasets"
	"github.com/blockreorg/blockreorg/internal/parallel"
	"github.com/blockreorg/blockreorg/sparse"
)

// accumKinds is every requestable strategy, the per-row selector included.
var accumKinds = []sparse.AccumulatorKind{
	sparse.AccumAuto, sparse.AccumDense, sparse.AccumHash, sparse.AccumSort,
}

// TestAccumGridBitIdentical sweeps the Table II grid (downscaled) and
// requires every accumulator strategy to reproduce its engine's oracle
// exactly — tolerance zero. The Gustavson engine (MultiplyConfigured) is
// checked against the sequential Multiply; the plan executor is checked
// against its own legacy shape — the sequential sort-merge Execute —
// because the plan's scattered product stream sums in scatter order, a
// different (equally valid) floating-point order than the row loop's. All
// strategies accumulate each column's products in stream order, so within
// an engine they agree to the bit. The grid spans regular meshes and
// hub-skewed networks, so the hash tables, the stable sort-combine and the
// per-row selector all see both families.
func TestAccumGridBitIdentical(t *testing.T) {
	const scale = 100
	ex := parallel.NewExecutor(6)
	for _, spec := range datasets.RealWorld() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			m, err := spec.Generate(scale)
			if err != nil {
				t.Fatal(err)
			}
			want, err := sparse.Multiply(m, m)
			if err != nil {
				t.Fatal(err)
			}
			legacy, err := BuildPlan(m, m, Params{Accumulator: sparse.AccumSort})
			if err != nil {
				t.Fatal(err)
			}
			planWant, err := legacy.Execute(0)
			if err != nil {
				t.Fatal(err)
			}
			for _, kind := range accumKinds {
				got, err := sparse.MultiplyConfigured(m, m, ex, nil,
					sparse.MulConfig{Accum: kind})
				if err != nil {
					t.Fatalf("%v: %v", kind, err)
				}
				if !got.Equal(want, 0) {
					t.Fatalf("MultiplyConfigured(%v) not bit-identical to Multiply", kind)
				}

				plan, err := BuildPlan(m, m, Params{Accumulator: kind})
				if err != nil {
					t.Fatalf("%v: %v", kind, err)
				}
				par, err := plan.ExecuteOn(ex, 0)
				if err != nil {
					t.Fatalf("%v: %v", kind, err)
				}
				if err := par.Validate(); err != nil {
					t.Fatalf("%v: %v", kind, err)
				}
				if !par.Equal(planWant, 0) {
					t.Fatalf("ExecuteOn(%v) not bit-identical to the sort-merge Execute", kind)
				}
			}
		})
	}
}

// TestAccumPlanCountsAndSelection checks the plan's per-row assignment: a
// pinned strategy assigns every working row to it, auto matches
// SelectAccumulator row by row, and the counts tally exactly the non-empty
// rows.
func TestAccumPlanCountsAndSelection(t *testing.T) {
	spec, err := datasets.ByName("youtube")
	if err != nil {
		t.Fatal(err)
	}
	m, err := spec.Generate(200)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range accumKinds {
		plan, err := BuildPlan(m, m, Params{Accumulator: kind})
		if err != nil {
			t.Fatal(err)
		}
		ap := plan.Accum
		if ap == nil {
			t.Fatalf("%v: plan has no accumulator assignment", kind)
		}
		if len(ap.Rows) != m.Rows {
			t.Fatalf("%v: %d row assignments, want %d", kind, len(ap.Rows), m.Rows)
		}
		var counts sparse.AccumCounts
		for i, got := range ap.Rows {
			want := sparse.SelectAccumulator(kind, plan.Limit.RowWork[i], ap.Cols)
			if got != want {
				t.Fatalf("%v: row %d assigned %v, want %v (work %d)",
					kind, i, got, want, plan.Limit.RowWork[i])
			}
			if plan.Limit.RowWork[i] == 0 {
				continue
			}
			switch got {
			case sparse.AccumDense:
				counts.Dense++
			case sparse.AccumHash:
				counts.Hash++
			case sparse.AccumSort:
				counts.Sort++
			}
		}
		if ap.Counts != counts {
			t.Fatalf("%v: plan counts %+v, want %+v", kind, ap.Counts, counts)
		}
		if kind == sparse.AccumAuto && (counts.Sort == 0 || counts.Dense+counts.Hash == 0) {
			t.Fatalf("auto on a skewed network selected only one class: %+v", counts)
		}
	}
}
