package core

import "sort"

// GatherBin collects low-performer pairs whose effective thread counts fall
// in (MaxEff/2, MaxEff]; Factor = GatherBlockSize/MaxEff of them fill one
// combined block.
type GatherBin struct {
	// MaxEff is the bin's upper bound on effective threads (a power of
	// two ≤ WarpSize).
	MaxEff int
	// Factor is how many micro-blocks one combined block holds
	// (GatherBlockSize / MaxEff). Factor 1 means the bin is not gathered,
	// "to avoid serialization" per the paper.
	Factor int
	// Pairs lists the pair indices binned here, ascending.
	Pairs []int
}

// CombinedBlock is one gathered thread block: up to Factor micro-block
// partitions, each executing one original low-performer pair compacted to
// MaxEff lanes.
type CombinedBlock struct {
	// MaxEff is the per-partition lane budget (the bin's MaxEff).
	MaxEff int
	// Pairs are the partitions' original pair indices. A trailing block of
	// its bin may hold fewer than Factor partitions.
	Pairs []int
}

// GatherPlan is the outcome of B-Gathering over the low-performer pairs.
type GatherPlan struct {
	Bins []GatherBin
	// Combined lists the gathered blocks across all bins with Factor > 1.
	Combined []CombinedBlock
	// Ungathered lists pairs from Factor-1 bins (17..31 effective
	// threads), which launch as ordinary small blocks.
	Ungathered []int
}

// PlanGather applies B-Gathering: low performers are binned by
// power-of-two effective-thread ranges and compacted into combined
// 32-thread blocks (paper §IV-C2 and Figure 6). With DisableGather the
// pairs all land in Ungathered; GatherFirstFit selects the exact-packing
// alternative instead of the paper's bins.
func PlanGather(cls *Classification, p Params) (*GatherPlan, error) {
	p, err := p.Normalize()
	if err != nil {
		return nil, err
	}
	plan := &GatherPlan{}
	if p.DisableGather {
		plan.Ungathered = append(plan.Ungathered, cls.LowPerformers...)
		return plan, nil
	}
	if p.GatherPolicy == GatherFirstFit {
		return planGatherFirstFit(cls, plan), nil
	}
	// Bins at MaxEff = 1, 2, 4, 8, 16, 32; the last has factor 1.
	bins := make([]GatherBin, 0, 6)
	for maxEff := 1; maxEff <= WarpSize; maxEff *= 2 {
		bins = append(bins, GatherBin{MaxEff: maxEff, Factor: GatherBlockSize / maxEff})
	}
	binOf := func(eff int) int {
		b := 0
		for 1<<b < eff {
			b++
		}
		return b
	}
	for _, k := range cls.LowPerformers {
		eff := cls.EffThreads[k]
		if eff <= 0 {
			continue
		}
		i := binOf(eff)
		bins[i].Pairs = append(bins[i].Pairs, k)
	}
	for _, bin := range bins {
		if len(bin.Pairs) == 0 {
			continue
		}
		plan.Bins = append(plan.Bins, bin)
		if bin.Factor <= 1 {
			plan.Ungathered = append(plan.Ungathered, bin.Pairs...)
			continue
		}
		for lo := 0; lo < len(bin.Pairs); lo += bin.Factor {
			hi := lo + bin.Factor
			if hi > len(bin.Pairs) {
				hi = len(bin.Pairs)
			}
			plan.Combined = append(plan.Combined, CombinedBlock{
				MaxEff: bin.MaxEff,
				Pairs:  append([]int(nil), bin.Pairs[lo:hi]...),
			})
		}
	}
	return plan, nil
}

// planGatherFirstFit is the exact-packing alternative to the paper's
// power-of-two bins: low performers are packed first-fit-decreasing into
// combined blocks of at most GatherBlockSize total effective lanes. It
// wastes fewer lanes than the bins (a 17-lane pair can share a block with a
// 15-lane pair instead of launching alone) at the cost of mixed-length
// partitions, whose slowest member sets the combined block's lock-step
// critical path. The ablation benchmarks quantify the trade.
func planGatherFirstFit(cls *Classification, plan *GatherPlan) *GatherPlan {
	// First-fit-decreasing over effective thread counts. EffThreads are
	// bounded by WarpSize here, so a simple open-bin scan stays cheap.
	order := append([]int(nil), cls.LowPerformers...)
	// Stable sort by descending effective threads, index ascending on ties
	// (determinism).
	sortByEffDesc(order, cls.EffThreads)
	var bins []CombinedBlock
	binFree := []int{}
	for _, k := range order {
		eff := cls.EffThreads[k]
		if eff <= 0 {
			continue
		}
		placed := false
		for i := range bins {
			if binFree[i] >= eff {
				bins[i].Pairs = append(bins[i].Pairs, k)
				binFree[i] -= eff
				placed = true
				break
			}
		}
		if !placed {
			bins = append(bins, CombinedBlock{MaxEff: eff, Pairs: []int{k}})
			binFree = append(binFree, GatherBlockSize-eff)
		}
	}
	for _, b := range bins {
		if len(b.Pairs) == 1 {
			// A lone pair gains nothing from the combined-block framing.
			plan.Ungathered = append(plan.Ungathered, b.Pairs[0])
			continue
		}
		plan.Combined = append(plan.Combined, b)
	}
	return plan
}

// sortByEffDesc orders pair indices by descending effective threads with
// ascending index as the tiebreak.
func sortByEffDesc(pairs []int, eff []int) {
	sort.SliceStable(pairs, func(i, j int) bool {
		if eff[pairs[i]] != eff[pairs[j]] {
			return eff[pairs[i]] > eff[pairs[j]]
		}
		return pairs[i] < pairs[j]
	})
}

// NumBlocks returns the number of thread blocks the gathered low performers
// launch (combined plus ungathered).
func (p *GatherPlan) NumBlocks() int { return len(p.Combined) + len(p.Ungathered) }

// MicroBlocks returns the number of original pairs covered by the plan.
func (p *GatherPlan) MicroBlocks() int {
	n := len(p.Ungathered)
	for _, c := range p.Combined {
		n += len(c.Pairs)
	}
	return n
}
