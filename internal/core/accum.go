package core

import (
	"github.com/blockreorg/blockreorg/sparse"
)

// AccumPlan is a plan's resolved merge-strategy assignment: one accumulator
// kind per output row, chosen once at plan-build time from the row-wise
// intermediate populations (Limit.RowWork) the symbolic sweeps already
// produced. Both layers consume it — the functional executor dispatches each
// row's merge through Rows[i], and the gpusim merge kernel prices each row
// under its strategy — so the simulated cost model and the host path always
// describe the same selection. The assignment depends only on the operand
// structure and the requested kind, so rebound plans (Rebind) keep it, and
// plan-cache hits reuse the selection without re-deciding.
type AccumPlan struct {
	// Requested is the kind the caller asked for; Rows holds the per-row
	// resolution (Requested itself unless it was sparse.AccumAuto).
	Requested sparse.AccumulatorKind
	Rows      []sparse.AccumulatorKind
	// Counts tallies the assigned rows per strategy, skipping zero-work
	// rows (they merge through no strategy at all). The three fields sum
	// to the product's populated row count.
	Counts sparse.AccumCounts
	// Cols is the output dimension the selection was made against; the
	// merge cost model derives the sort strategy's radix pass count from
	// it.
	Cols int
}

// BuildAccumPlan resolves the accumulator strategy for every output row of
// a product with the given per-row intermediate populations and column
// count. It is cheap — one SelectAccumulator call per row — and allocates
// only the Rows array.
func BuildAccumPlan(requested sparse.AccumulatorKind, rowWork []int64, cols int) *AccumPlan {
	ap := &AccumPlan{
		Requested: requested,
		Rows:      make([]sparse.AccumulatorKind, len(rowWork)),
		Cols:      cols,
	}
	for i, w := range rowWork {
		kind := sparse.SelectAccumulator(requested, w, cols)
		ap.Rows[i] = kind
		if w == 0 {
			continue
		}
		switch kind {
		case sparse.AccumHash:
			ap.Counts.Hash++
		case sparse.AccumSort:
			ap.Counts.Sort++
		default:
			ap.Counts.Dense++
		}
	}
	return ap
}
