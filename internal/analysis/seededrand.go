package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
)

// SeededRandAnalyzer enforces the determinism rule: the simulator,
// generators and benchmark pipeline are specified to be reproducible, so
// randomness must flow through explicitly seeded sources
// (rand.New(rand.NewPCG(seed, ...))). Two constructs break that:
// importing math/rand (v1), whose global generator is auto-seeded since
// Go 1.20, and calling the top-level functions of math/rand/v2, which
// draw from an unseedable global. Constructor calls (New, NewPCG,
// NewChaCha8, NewZipf) are the sanctioned surface.
func SeededRandAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "seededrand",
		Doc:  "no math/rand v1 and no unseeded top-level math/rand/v2 generators",
		Run:  runSeededRand,
	}
}

// randConstructor reports whether name is an allowed seeded-source
// constructor of math/rand/v2.
func randConstructor(name string) bool {
	switch name {
	case "New", "NewPCG", "NewChaCha8", "NewZipf", "NewSource":
		return true
	}
	return false
}

func runSeededRand(p *Pass) []Finding {
	var out []Finding
	for _, f := range p.Files {
		// randNames collects the local names this file binds to the rand
		// packages, for the syntactic fallback when type info is missing.
		randNames := map[string]bool{}
		for _, imp := range f.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			switch ip {
			case "math/rand":
				out = append(out, Finding{
					Pos:      p.position(imp),
					Analyzer: "seededrand",
					Message:  "import of math/rand (v1): its global generator is auto-seeded; use math/rand/v2 with rand.New(rand.NewPCG(seed, ...))",
				})
			case "math/rand/v2":
				name := "rand"
				if imp.Name != nil {
					name = imp.Name.Name
				}
				randNames[name] = true
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !isRandPackage(p, id, randNames) {
				return true
			}
			if randConstructor(sel.Sel.Name) {
				return true
			}
			out = append(out, Finding{
				Pos:      p.position(sel),
				Analyzer: "seededrand",
				Message: fmt.Sprintf("rand.%s draws from the unseeded global generator; use a seeded *rand.Rand (rand.New(rand.NewPCG(seed, ...)))",
					sel.Sel.Name),
			})
			return true
		})
	}
	return out
}

// isRandPackage reports whether id names the math/rand/v2 package — by
// type information when it resolved, or by the file's import set when the
// identifier is otherwise unbound (a local variable named rand shadows
// the package and is not flagged).
func isRandPackage(p *Pass, id *ast.Ident, randNames map[string]bool) bool {
	if obj, ok := p.Info.Uses[id]; ok {
		pn, ok := obj.(*types.PkgName)
		if !ok {
			return false
		}
		ip := pn.Imported().Path()
		return ip == "math/rand/v2" || ip == "math/rand"
	}
	return randNames[id.Name]
}
