package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestVendorSkipped checks the loader never descends into vendor trees:
// the vendored fixture package carries a deliberate pkgdoc violation
// that must not surface.
func TestVendorSkipped(t *testing.T) {
	passes := loadFixture(t)
	for _, p := range passes {
		if strings.Contains(p.PkgPath, "vendor") {
			t.Fatalf("vendored package loaded: %s", p.PkgPath)
		}
	}
	for _, f := range RunAll(passes, nil) {
		if strings.Contains(filepath.ToSlash(f.Pos.Filename), "/vendor/") {
			t.Fatalf("finding from vendored code: %v", f)
		}
	}
}

// TestBuildTagExcluded checks files ruled out by build constraints are
// skipped instead of failing (or polluting) the load: the excluded
// fixture files hold arena leaks that must never be reported.
func TestBuildTagExcluded(t *testing.T) {
	passes := loadFixture(t)
	found := false
	for _, p := range passes {
		if p.PkgPath != "example.com/vetmod/buildtagok" {
			continue
		}
		found = true
		if len(p.Files) != 1 {
			t.Errorf("buildtagok should load exactly 1 file, got %d", len(p.Files))
		}
		for _, f := range p.Files {
			name := filepath.Base(p.Fset.Position(f.Pos()).Filename)
			if strings.HasPrefix(name, "excluded_") {
				t.Errorf("build-tag-excluded file loaded: %s", name)
			}
		}
	}
	if !found {
		t.Fatal("buildtagok fixture package not loaded at all")
	}
	if got := findingsFor(RunAll(passes, nil), "poolreturn", "buildtagok"); len(got) != 0 {
		t.Fatalf("findings leaked from excluded files: %v", got)
	}
}
