package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the finding the way compilers do, so editors can jump.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Pass is one type-checked package presented to the analyzers.
type Pass struct {
	Fset    *token.FileSet
	Files   []*ast.File
	PkgPath string
	PkgName string
	Pkg     *types.Package
	Info    *types.Info
}

// position resolves a node's source position.
func (p *Pass) position(n ast.Node) token.Position {
	return p.Fset.Position(n.Pos())
}

// Analyzer is one project rule.
type Analyzer struct {
	// Name is the rule's identifier, usable with the driver's -only flag.
	Name string
	// Doc is a one-line description shown by -list.
	Doc string
	// Run inspects one package and returns its violations.
	Run func(*Pass) []Finding
}

// All returns every analyzer in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		RawIndexAnalyzer(),
		NNZTruncAnalyzer(),
		KernelValidateAnalyzer(),
		SeededRandAnalyzer(),
		ScratchMakeAnalyzer(),
		PkgDocAnalyzer(),
	}
}

// RunAll applies every analyzer (or the named subset) to every pass and
// returns the findings in source order.
func RunAll(passes []*Pass, only map[string]bool) []Finding {
	var out []Finding
	for _, a := range All() {
		if len(only) > 0 && !only[a.Name] {
			continue
		}
		for _, p := range passes {
			out = append(out, a.Run(p)...)
		}
	}
	sortFindings(out)
	return out
}

// sortFindings orders findings by file, line, column, analyzer.
func sortFindings(fs []Finding) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && findingLess(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func findingLess(a, b Finding) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Analyzer < b.Analyzer
}
