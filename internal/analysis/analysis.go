package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the finding the way compilers do, so editors can jump.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Pass is one type-checked package presented to the analyzers.
type Pass struct {
	Fset    *token.FileSet
	Files   []*ast.File
	PkgPath string
	PkgName string
	Pkg     *types.Package
	Info    *types.Info

	// facts caches the per-function CFG/mutex/call tables shared by the
	// path-sensitive rules; built lazily by Facts().
	facts *Facts
}

// position resolves a node's source position.
func (p *Pass) position(n ast.Node) token.Position {
	return p.Fset.Position(n.Pos())
}

// Analyzer is one project rule.
type Analyzer struct {
	// Name is the rule's identifier, usable with the driver's -only flag.
	Name string
	// Doc is a one-line description shown by -list.
	Doc string
	// Run inspects one package and returns its violations.
	Run func(*Pass) []Finding
}

// All returns every analyzer in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		RawIndexAnalyzer(),
		NNZTruncAnalyzer(),
		KernelValidateAnalyzer(),
		SeededRandAnalyzer(),
		ScratchMakeAnalyzer(),
		PkgDocAnalyzer(),
		LockHeldAnalyzer(),
		CtxFlowAnalyzer(),
		GoroLeakAnalyzer(),
		SpanPairAnalyzer(),
		PoolReturnAnalyzer(),
		FileHandleAnalyzer(),
	}
}

// Result is the full outcome of a run: the findings to report, and the
// findings a //vet:ignore directive suppressed (kept so drivers can
// report a suppression count instead of silently dropping them).
type Result struct {
	Findings   []Finding
	Suppressed []Finding
}

// RunAll applies every analyzer (or the named subset) to every pass and
// returns the unsuppressed findings in source order. Wrapper around
// RunAllResult for callers that don't report suppression counts.
func RunAll(passes []*Pass, only map[string]bool) []Finding {
	return RunAllResult(passes, only).Findings
}

// RunAllResult applies every analyzer (or the named subset) to every
// pass, honors //vet:ignore directives, and returns both lists in
// source order. Malformed directives surface as "vetignore" findings.
func RunAllResult(passes []*Pass, only map[string]bool) Result {
	var raw []Finding
	for _, a := range All() {
		if len(only) > 0 && !only[a.Name] {
			continue
		}
		for _, p := range passes {
			raw = append(raw, a.Run(p)...)
		}
	}
	var dirs []*directive
	var bad []Finding
	for _, p := range passes {
		d, b := p.directives()
		dirs = append(dirs, d...)
		// Malformed directives are findings of the "vetignore"
		// pseudo-analyzer and honor the subset filter like any rule.
		if len(only) == 0 || only["vetignore"] {
			bad = append(bad, b...)
		}
	}
	kept, suppressed := applySuppressions(raw, dirs, bad)
	sortFindings(kept)
	sortFindings(suppressed)
	return Result{Findings: kept, Suppressed: suppressed}
}

// sortFindings orders findings by file, line, column, analyzer.
func sortFindings(fs []Finding) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && findingLess(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func findingLess(a, b Finding) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Analyzer < b.Analyzer
}
