package analysis

import (
	"fmt"
	"strings"
)

// PkgDocAnalyzer enforces the documentation contract: every package must
// carry a package doc comment, and for library packages it must follow the
// godoc convention of opening with "Package <name>". Commands (package
// main) only need a doc comment — the convention there is "Command <name>"
// but any summary is accepted. The CI gate runs this so a new package
// cannot ship without the one-paragraph statement of what it is for.
func PkgDocAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "pkgdoc",
		Doc:  "every package carries a doc comment; library packages open with \"Package <name>\"",
		Run:  runPkgDoc,
	}
}

func runPkgDoc(p *Pass) []Finding {
	var doc string
	for _, f := range p.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			doc = f.Doc.Text()
			break
		}
	}
	if doc == "" {
		if len(p.Files) == 0 {
			return nil
		}
		return []Finding{{
			Pos:      p.position(p.Files[0].Name),
			Analyzer: "pkgdoc",
			Message:  fmt.Sprintf("package %s has no package documentation; add a doc comment (conventionally in doc.go)", p.PkgName),
		}}
	}
	if p.PkgName != "main" && !strings.HasPrefix(doc, "Package "+p.PkgName) {
		for _, f := range p.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				return []Finding{{
					Pos:      p.position(f.Doc),
					Analyzer: "pkgdoc",
					Message:  fmt.Sprintf("package documentation should open with %q (godoc convention)", "Package "+p.PkgName),
				}}
			}
		}
	}
	return nil
}
