package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture loads the vetmod fixture module once per test that needs it.
func loadFixture(t *testing.T) []*Pass {
	t.Helper()
	passes, err := Load(filepath.Join("testdata", "vetmod"), nil)
	if err != nil {
		t.Fatalf("Load(testdata/vetmod): %v", err)
	}
	if len(passes) == 0 {
		t.Fatal("Load returned no packages")
	}
	return passes
}

// findingsFor filters findings to one analyzer within one fixture package.
func findingsFor(fs []Finding, analyzer, pkgDir string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Analyzer != analyzer {
			continue
		}
		if !strings.Contains(filepath.ToSlash(f.Pos.Filename), "/"+pkgDir+"/") {
			continue
		}
		out = append(out, f)
	}
	return out
}

func TestAnalyzers(t *testing.T) {
	passes := loadFixture(t)
	all := RunAll(passes, nil)

	// Each positive fixture must trip its analyzer with the expected
	// message; each negative fixture must stay silent.
	cases := []struct {
		analyzer string
		pkgDir   string
		min      int    // minimum findings (0 = must be silent)
		contains string // substring required in at least one message
	}{
		{"rawindex", "rawindexbad", 3, "Row/Col accessors"},
		{"rawindex", "rawindexok", 0, ""},
		{"nnztrunc", "nnztruncbad", 3, "truncates nnz arithmetic"},
		{"nnztrunc", "nnztruncok", 0, ""},
		{"kernelvalidate", "kernels", 1, "MultiplyBad"},
		{"seededrand", "seededrandbad", 4, "unseeded global generator"},
		{"seededrand", "seededrandok", 0, ""},
		{"scratchmake", "scratchmakebad", 3, "internal/parallel arenas"},
		{"scratchmake", "scratchmakeok", 0, ""},
		{"rawindex", "pipelinebad", 5, "Row/Col accessors"},
		{"rawindex", "pipelineok", 0, ""},
		{"scratchmake", "pipelinebad", 1, "internal/parallel arenas"},
		{"scratchmake", "pipelineok", 0, ""},
		{"pkgdoc", "pkgdocbad", 1, "no package documentation"},
		{"pkgdoc", "pkgdocprefix", 1, "godoc convention"},
		{"pkgdoc", "pkgdocok", 0, ""},
	}
	for _, c := range cases {
		got := findingsFor(all, c.analyzer, c.pkgDir)
		if c.min == 0 {
			if len(got) != 0 {
				t.Errorf("%s on %s: want no findings, got %v", c.analyzer, c.pkgDir, got)
			}
			continue
		}
		if len(got) < c.min {
			t.Errorf("%s on %s: want >= %d findings, got %d: %v",
				c.analyzer, c.pkgDir, c.min, len(got), got)
			continue
		}
		matched := false
		for _, f := range got {
			if strings.Contains(f.Message, c.contains) {
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s on %s: no finding mentions %q in %v",
				c.analyzer, c.pkgDir, c.contains, got)
		}
	}
}

// TestKernelValidateScope checks the rule fires only on the bad entry
// point, not on gated, unexported, or sparse-free functions.
func TestKernelValidateScope(t *testing.T) {
	passes := loadFixture(t)
	got := findingsFor(RunAll(passes, map[string]bool{"kernelvalidate": true}), "kernelvalidate", "kernels")
	if len(got) != 1 {
		t.Fatalf("want exactly 1 kernelvalidate finding, got %d: %v", len(got), got)
	}
	if !strings.Contains(got[0].Message, "MultiplyBad") {
		t.Fatalf("finding names wrong function: %v", got[0])
	}
}

// TestSeededRandV1Import checks the v1 import itself is reported.
func TestSeededRandV1Import(t *testing.T) {
	passes := loadFixture(t)
	got := findingsFor(RunAll(passes, map[string]bool{"seededrand": true}), "seededrand", "seededrandbad")
	foundImport := false
	for _, f := range got {
		if strings.Contains(f.Message, "math/rand (v1)") {
			foundImport = true
		}
	}
	if !foundImport {
		t.Fatalf("v1 import not reported; findings: %v", got)
	}
}

// TestOnlyFilter checks RunAll's analyzer subsetting.
func TestOnlyFilter(t *testing.T) {
	passes := loadFixture(t)
	got := RunAll(passes, map[string]bool{"rawindex": true})
	for _, f := range got {
		if f.Analyzer != "rawindex" {
			t.Fatalf("only=rawindex leaked %s finding: %v", f.Analyzer, f)
		}
	}
	if len(got) == 0 {
		t.Fatal("only=rawindex returned nothing")
	}
}

// TestFindingsSorted checks the stable source ordering contract.
func TestFindingsSorted(t *testing.T) {
	passes := loadFixture(t)
	fs := RunAll(passes, nil)
	for i := 1; i < len(fs); i++ {
		if findingLess(fs[i], fs[i-1]) {
			t.Fatalf("findings out of order at %d: %v before %v", i, fs[i-1], fs[i])
		}
	}
}

// TestPatternSelection checks Load's package pattern matching.
func TestPatternSelection(t *testing.T) {
	passes, err := Load(filepath.Join("testdata", "vetmod"), []string{"./kernels"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(passes) != 1 || passes[0].PkgName != "kernels" {
		t.Fatalf("pattern ./kernels selected %d packages", len(passes))
	}
	passes, err = Load(filepath.Join("testdata", "vetmod"), []string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(passes) < 7 {
		t.Fatalf("pattern ./... selected only %d packages", len(passes))
	}
}
