package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture loads the vetmod fixture module once per test that needs it.
func loadFixture(t *testing.T) []*Pass {
	t.Helper()
	passes, err := Load(filepath.Join("testdata", "vetmod"), nil)
	if err != nil {
		t.Fatalf("Load(testdata/vetmod): %v", err)
	}
	if len(passes) == 0 {
		t.Fatal("Load returned no packages")
	}
	return passes
}

// findingsFor filters findings to one analyzer within one fixture package.
func findingsFor(fs []Finding, analyzer, pkgDir string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Analyzer != analyzer {
			continue
		}
		if !strings.Contains(filepath.ToSlash(f.Pos.Filename), "/"+pkgDir+"/") {
			continue
		}
		out = append(out, f)
	}
	return out
}

func TestAnalyzers(t *testing.T) {
	passes := loadFixture(t)
	all := RunAll(passes, nil)

	// Each positive fixture must trip its analyzer with the expected
	// message; each negative fixture must stay silent.
	cases := []struct {
		analyzer string
		pkgDir   string
		min      int    // minimum findings (0 = must be silent)
		contains string // substring required in at least one message
	}{
		{"rawindex", "rawindexbad", 3, "Row/Col accessors"},
		{"rawindex", "rawindexok", 0, ""},
		{"nnztrunc", "nnztruncbad", 3, "truncates nnz arithmetic"},
		{"nnztrunc", "nnztruncok", 0, ""},
		{"kernelvalidate", "kernels", 1, "MultiplyBad"},
		{"seededrand", "seededrandbad", 4, "unseeded global generator"},
		{"seededrand", "seededrandok", 0, ""},
		{"scratchmake", "scratchmakebad", 5, "internal/parallel arenas"},
		{"scratchmake", "scratchmakeok", 0, ""},
		{"rawindex", "pipelinebad", 5, "Row/Col accessors"},
		{"rawindex", "pipelineok", 0, ""},
		{"scratchmake", "pipelinebad", 1, "internal/parallel arenas"},
		{"scratchmake", "pipelineok", 0, ""},
		{"pkgdoc", "pkgdocbad", 1, "no package documentation"},
		{"pkgdoc", "pkgdocprefix", 1, "godoc convention"},
		{"pkgdoc", "pkgdocok", 0, ""},
		{"lockheld", "lockheldbad", 4, "held across"},
		{"lockheld", "lockheldok", 0, ""},
		{"ctxflow", "ctxflowbad", 4, "discards the caller's context"},
		{"ctxflow", "ctxflowok", 0, ""},
		{"goroleak", "goroleakbad", 3, "without signaling"},
		{"goroleak", "goroleakok", 0, ""},
		{"spanpair", "spanpairbad", 3, "never closed"},
		{"spanpair", "spanpairok", 0, ""},
		{"poolreturn", "poolreturnbad", 3, "not released"},
		{"poolreturn", "poolreturnok", 0, ""},
		{"filehandle", "filehandlebad", 3, "not closed on every path"},
		{"filehandle", "filehandleok", 0, ""},
	}
	for _, c := range cases {
		got := findingsFor(all, c.analyzer, c.pkgDir)
		if c.min == 0 {
			if len(got) != 0 {
				t.Errorf("%s on %s: want no findings, got %v", c.analyzer, c.pkgDir, got)
			}
			continue
		}
		if len(got) < c.min {
			t.Errorf("%s on %s: want >= %d findings, got %d: %v",
				c.analyzer, c.pkgDir, c.min, len(got), got)
			continue
		}
		matched := false
		for _, f := range got {
			if strings.Contains(f.Message, c.contains) {
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s on %s: no finding mentions %q in %v",
				c.analyzer, c.pkgDir, c.contains, got)
		}
	}
}

// TestKernelValidateScope checks the rule fires only on the bad entry
// point, not on gated, unexported, or sparse-free functions.
func TestKernelValidateScope(t *testing.T) {
	passes := loadFixture(t)
	got := findingsFor(RunAll(passes, map[string]bool{"kernelvalidate": true}), "kernelvalidate", "kernels")
	if len(got) != 1 {
		t.Fatalf("want exactly 1 kernelvalidate finding, got %d: %v", len(got), got)
	}
	if !strings.Contains(got[0].Message, "MultiplyBad") {
		t.Fatalf("finding names wrong function: %v", got[0])
	}
}

// TestSeededRandV1Import checks the v1 import itself is reported.
func TestSeededRandV1Import(t *testing.T) {
	passes := loadFixture(t)
	got := findingsFor(RunAll(passes, map[string]bool{"seededrand": true}), "seededrand", "seededrandbad")
	foundImport := false
	for _, f := range got {
		if strings.Contains(f.Message, "math/rand (v1)") {
			foundImport = true
		}
	}
	if !foundImport {
		t.Fatalf("v1 import not reported; findings: %v", got)
	}
}

// TestOnlyFilter checks RunAll's analyzer subsetting.
func TestOnlyFilter(t *testing.T) {
	passes := loadFixture(t)
	got := RunAll(passes, map[string]bool{"rawindex": true})
	for _, f := range got {
		if f.Analyzer != "rawindex" {
			t.Fatalf("only=rawindex leaked %s finding: %v", f.Analyzer, f)
		}
	}
	if len(got) == 0 {
		t.Fatal("only=rawindex returned nothing")
	}
}

// TestFindingsSorted checks the stable source ordering contract.
func TestFindingsSorted(t *testing.T) {
	passes := loadFixture(t)
	fs := RunAll(passes, nil)
	for i := 1; i < len(fs); i++ {
		if findingLess(fs[i], fs[i-1]) {
			t.Fatalf("findings out of order at %d: %v before %v", i, fs[i-1], fs[i])
		}
	}
}

// TestSuppression checks the //vet:ignore contract: covered findings
// move to the suppressed list, and malformed directives are themselves
// findings.
func TestSuppression(t *testing.T) {
	passes := loadFixture(t)
	res := RunAllResult(passes, nil)
	for _, rule := range []string{"poolreturn", "goroleak"} {
		if got := findingsFor(res.Findings, rule, "suppressok"); len(got) != 0 {
			t.Errorf("%s finding reported despite directive: %v", rule, got)
		}
	}
	sup := 0
	for _, f := range res.Suppressed {
		if strings.Contains(filepath.ToSlash(f.Pos.Filename), "/suppressok/") {
			sup++
		}
	}
	if sup != 2 {
		t.Errorf("want 2 suppressed findings in suppressok, got %d: %v", sup, res.Suppressed)
	}
	if got := findingsFor(res.Findings, "vetignore", "suppressbad"); len(got) != 2 {
		t.Errorf("want 2 malformed-directive findings in suppressbad, got %d: %v", len(got), got)
	}
	// The compatibility wrapper drops the suppressed findings too.
	for _, f := range RunAll(passes, nil) {
		if strings.Contains(filepath.ToSlash(f.Pos.Filename), "/suppressok/") {
			t.Errorf("RunAll leaked a suppressed finding: %v", f)
		}
	}
}

// TestFindingsGolden pins the full fixture run — every finding, in the
// deterministic file:line:col order — against a committed golden. Run
// with UPDATE_GOLDEN=1 to regenerate after intentional rule changes.
func TestFindingsGolden(t *testing.T) {
	passes := loadFixture(t)
	res := RunAllResult(passes, nil)
	var b strings.Builder
	for _, f := range res.Findings {
		fmt.Fprintf(&b, "%s:%d:%d: [%s] %s\n",
			vetmodRel(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	got := b.String()
	golden := filepath.Join("testdata", "findings_golden.txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("findings diverge from golden (UPDATE_GOLDEN=1 regenerates):\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// vetmodRel strips everything up to the fixture module root, so the
// golden is machine-independent.
func vetmodRel(filename string) string {
	s := filepath.ToSlash(filename)
	if i := strings.Index(s, "testdata/vetmod/"); i >= 0 {
		return s[i+len("testdata/vetmod/"):]
	}
	return s
}

// TestPatternSelection checks Load's package pattern matching.
func TestPatternSelection(t *testing.T) {
	passes, err := Load(filepath.Join("testdata", "vetmod"), []string{"./kernels"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(passes) != 1 || passes[0].PkgName != "kernels" {
		t.Fatalf("pattern ./kernels selected %d packages", len(passes))
	}
	passes, err = Load(filepath.Join("testdata", "vetmod"), []string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(passes) < 7 {
		t.Fatalf("pattern ./... selected only %d packages", len(passes))
	}
}
