package analysis

import (
	"go/ast"
	"strings"
)

// GoroLeakAnalyzer flags goroutines launched without a join. A goroutine
// whose body can reach its end without signaling anyone — no
// WaitGroup.Done, no channel send, no close — finishes invisibly, so
// nothing can wait for it: Shutdown drains early, tests pass before the
// work runs, panics vanish. The rule checks every `go func(){...}()`
// body's CFG: if some path reaches the exit without passing a signal
// statement, the launch is reported. Deferred signals count at their
// defer statement (a path that returns before registering the defer is
// still a leak), and a body that never terminates (a worker loop with no
// way out) is fine — it has no exit to miss. For `go name()` launches
// the body is out of reach, so the launch is reported only when the
// enclosing function shows no join machinery (no .Add or .Wait call) at
// all.
func GoroLeakAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "goroleak",
		Doc:  "goroutine without a WaitGroup/done-channel join on all paths",
		Run:  runGoroLeak,
	}
}

func runGoroLeak(p *Pass) []Finding {
	var out []Finding
	facts := p.Facts()
	for _, ff := range facts.Funcs {
		for _, node := range ff.Graph.Nodes {
			gs, ok := node.Stmt.(*ast.GoStmt)
			if !ok {
				continue
			}
			if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
				body := facts.funcFor(lit)
				if body == nil || !body.Graph.exitReachable(isJoinSignal) {
					continue
				}
				out = append(out, Finding{
					Pos:      p.position(gs),
					Analyzer: "goroleak",
					Message:  "goroutine can finish without signaling (no Done, send, or close on some path); nothing can join it",
				})
				continue
			}
			// Named launch: body unavailable. Require join machinery in
			// the launching function.
			if hasJoinMachinery(ff) {
				continue
			}
			out = append(out, Finding{
				Pos:      p.position(gs),
				Analyzer: "goroleak",
				Message:  "goroutine launched with no visible join (no WaitGroup Add/Wait in the launching function)",
			})
		}
	}
	return out
}

// funcFor finds the facts of a function literal.
func (f *Facts) funcFor(lit *ast.FuncLit) *FuncFacts {
	for _, ff := range f.Funcs {
		if ff.Lit == lit {
			return ff
		}
	}
	return nil
}

// isJoinSignal reports whether the node signals completion to another
// goroutine: a channel send (bare or in a select clause), a close, or a
// Done-family call. Deferred forms count here too — the node is the
// defer statement, so only paths that register the defer are absorbed.
func isJoinSignal(n *Node) bool {
	if _, ok := n.Stmt.(*ast.SendStmt); ok {
		return true
	}
	found := false
	shallowInspect(n.Stmt, func(x ast.Node) bool {
		if found {
			return false
		}
		switch x := x.(type) {
		case *ast.SendStmt:
			found = true
			return false
		case *ast.CallExpr:
			callee := renderCallee(x)
			if callee == "close" || strings.HasSuffix(callee, ".Done") || strings.HasSuffix(callee, ".Signal") || strings.HasSuffix(callee, ".Broadcast") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// hasJoinMachinery reports whether the function calls .Add or .Wait —
// the WaitGroup bookkeeping that pairs a named goroutine launch with a
// join the rule cannot see into.
func hasJoinMachinery(ff *FuncFacts) bool {
	for _, cs := range ff.Calls {
		if strings.HasSuffix(cs.Callee, ".Add") || strings.HasSuffix(cs.Callee, ".Wait") {
			return true
		}
	}
	return false
}
