package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// The loader turns a Go module tree into type-checked Passes without any
// dependency beyond the standard library. It parses every non-test file in
// the module, type-checks packages in dependency order, and resolves
// imports as follows: module-internal paths are satisfied from the
// already-checked packages; everything else (stdlib included) is stubbed
// with an empty package. Type errors caused by stubbed members are
// tolerated — the analyzers only rely on types defined inside the module
// and degrade to syntactic matching elsewhere.

// Load parses and type-checks the module rooted at root, returning a Pass
// per package selected by the patterns. Patterns follow the go tool's
// shape: "./..." (everything), "./dir/..." (a subtree), "./dir" or "dir"
// (one package). An empty pattern list selects everything.
func Load(root string, patterns []string) ([]*Pass, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	pkgs := make(map[string]*parsedPkg, len(dirs))
	for _, dir := range dirs {
		p, err := parsePackage(fset, root, modPath, dir)
		if err != nil {
			return nil, err
		}
		if p != nil {
			pkgs[p.importPath] = p
		}
	}
	order, err := sortByDeps(pkgs)
	if err != nil {
		return nil, err
	}
	checker := newChecker(fset, pkgs)
	var passes []*Pass
	for _, p := range order {
		pass, err := checker.check(p)
		if err != nil {
			return nil, err
		}
		if selected(p, root, patterns) {
			passes = append(passes, pass)
		}
	}
	return passes, nil
}

// parsedPkg is one package directory between parsing and type checking.
type parsedPkg struct {
	dir        string
	importPath string
	name       string
	files      []*ast.File
	imports    []string // module-internal import paths only
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: not a module root: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(strings.Trim(strings.TrimSpace(rest), `"`)), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// packageDirs walks the module tree collecting directories that hold Go
// files, skipping testdata, vendor, and hidden or underscore directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

// parsePackage parses the non-test Go files of one directory. Returns nil
// when the directory holds only test files.
func parsePackage(fset *token.FileSet, root, modPath, dir string) (*parsedPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	importPath := modPath
	if rel != "." {
		importPath = modPath + "/" + filepath.ToSlash(rel)
	}
	p := &parsedPkg{dir: dir, importPath: importPath}
	seen := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if excludedByBuildTags(f) {
			continue
		}
		p.files = append(p.files, f)
		if p.name == "" {
			p.name = f.Name.Name
		}
		for _, imp := range f.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if (ip == modPath || strings.HasPrefix(ip, modPath+"/")) && !seen[ip] {
				seen[ip] = true
				p.imports = append(p.imports, ip)
			}
		}
	}
	if len(p.files) == 0 {
		return nil, nil
	}
	return p, nil
}

// excludedByBuildTags reports whether the file's build constraints (in
// either //go:build or legacy // +build form) exclude it from the host
// configuration. Generator files tagged `ignore` and platform files for
// other systems used to fail the whole load with their unresolvable
// references; now they are simply skipped, the way the go tool skips
// them.
func excludedByBuildTags(f *ast.File) bool {
	for _, cg := range f.Comments {
		// Constraints only count before the package clause.
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			if !expr.Eval(hostTagOK) {
				return true
			}
		}
	}
	return false
}

// hostTagOK evaluates one build tag for the loading host: the host OS
// and architecture, the "unix" alias, and every go1.x version gate hold;
// custom tags (including the conventional "ignore") do not.
func hostTagOK(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "unix", "cgo", "gc":
		return true
	}
	return strings.HasPrefix(tag, "go1.")
}

// sortByDeps orders packages so every module-internal import precedes its
// importer.
func sortByDeps(pkgs map[string]*parsedPkg) ([]*parsedPkg, error) {
	paths := make([]string, 0, len(pkgs))
	for ip := range pkgs {
		paths = append(paths, ip)
	}
	sort.Strings(paths)
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(pkgs))
	var order []*parsedPkg
	var visit func(ip string) error
	visit = func(ip string) error {
		switch state[ip] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analysis: import cycle through %s", ip)
		}
		state[ip] = visiting
		p := pkgs[ip]
		for _, dep := range p.imports {
			if _, ok := pkgs[dep]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[ip] = done
		order = append(order, p)
		return nil
	}
	for _, ip := range paths {
		if err := visit(ip); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// checker type-checks packages one by one, remembering the results so
// later packages can import earlier ones.
type checker struct {
	fset    *token.FileSet
	pkgs    map[string]*parsedPkg
	checked map[string]*types.Package
	stubs   map[string]*types.Package
}

func newChecker(fset *token.FileSet, pkgs map[string]*parsedPkg) *checker {
	return &checker{
		fset:    fset,
		pkgs:    pkgs,
		checked: map[string]*types.Package{},
		stubs:   map[string]*types.Package{},
	}
}

// Import implements types.Importer: module-internal packages resolve to
// their checked form, everything else to a reusable empty stub.
func (c *checker) Import(ip string) (*types.Package, error) {
	if p, ok := c.checked[ip]; ok {
		return p, nil
	}
	if s, ok := c.stubs[ip]; ok {
		return s, nil
	}
	s := types.NewPackage(ip, stubName(ip))
	// Marking the stub complete keeps go/types from reporting every
	// member access into it; the members are still unknown, which the
	// tolerant error handler absorbs.
	s.MarkComplete()
	c.stubs[ip] = s
	return s, nil
}

// versionSuffix matches major-version import path elements like "v2".
var versionSuffix = regexp.MustCompile(`^v[0-9]+$`)

// stubName guesses a package name from its import path ("math/rand/v2" →
// "rand").
func stubName(ip string) string {
	base := path.Base(ip)
	for versionSuffix.MatchString(base) && path.Dir(ip) != "." {
		ip = path.Dir(ip)
		base = path.Base(ip)
	}
	if i := strings.IndexAny(base, ".-"); i > 0 {
		base = base[:i]
	}
	if base == "" || base == "." || base == "/" {
		return "pkg"
	}
	return base
}

// check type-checks one parsed package into a Pass. Type errors are
// expected (stubbed imports) and collected but not fatal.
func (c *checker) check(p *parsedPkg) (*Pass, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: c,
		Error:    func(error) {}, // tolerate: stubs make stdlib members unknown
	}
	pkg, _ := conf.Check(p.importPath, c.fset, p.files, info)
	if pkg == nil {
		return nil, fmt.Errorf("analysis: type-checking %s produced no package", p.importPath)
	}
	c.checked[p.importPath] = pkg
	return &Pass{
		Fset:    c.fset,
		Files:   p.files,
		PkgPath: p.importPath,
		PkgName: p.name,
		Pkg:     pkg,
		Info:    info,
	}, nil
}

// selected reports whether the package matches any pattern.
func selected(p *parsedPkg, root string, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	rel, err := filepath.Rel(root, p.dir)
	if err != nil {
		return false
	}
	rel = filepath.ToSlash(rel)
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		switch {
		case pat == "...":
			return true
		case strings.HasSuffix(pat, "/..."):
			prefix := strings.TrimSuffix(pat, "/...")
			if prefix == "." || rel == prefix || strings.HasPrefix(rel, prefix+"/") {
				return true
			}
		case pat == "." && rel == ".":
			return true
		case rel == pat:
			return true
		}
	}
	return false
}
