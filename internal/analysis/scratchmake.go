package analysis

import (
	"go/ast"
	"regexp"
)

// ScratchMakeAnalyzer enforces the arena rule: inside the kernel packages
// (sparse, kernels, core, pipeline), a loop body must not allocate nnz-scaled
// scratch with make([]...) — dense accumulators, marker arrays, workload
// vectors and triplet buffers cycle through the internal/parallel arenas
// instead. A make inside a row or block loop re-allocates per iteration
// (or per request, for the serving loops one level up), which is exactly
// the GC-pressure pattern the arenas exist to remove; the pool also
// poisons recycled buffers under Paranoid mode, a check a private make
// silently escapes.
func ScratchMakeAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "scratchmake",
		Doc:  "no make([]...) of nnz-scaled scratch inside kernel-package loops; draw it from the internal/parallel arenas",
		Run:  runScratchMake,
	}
}

// kernelPackage reports whether the package holds numeric kernels bound by
// the arena rule. The pipeline package counts: its convergence sweeps and
// normalization passes run once per iteration, so a make inside them
// re-allocates every round of an iterative workload. internal/parallel
// itself is exempt: it is where the sanctioned allocations live.
func kernelPackage(name string) bool {
	switch name {
	case "sparse", "kernels", "core", "pipeline":
		return true
	}
	return false
}

// scratchName extends the shared nnz-scaled vocabulary (nnzName) with the
// names the accumulator strategies size their per-row scratch by: symbolic
// upper bounds, hash-table slot counts, accumulator vectors and touched
// lists. A make sized by any of these inside a kernel loop is re-building
// RowMerger scratch the arenas already pool.
var scratchName = regexp.MustCompile(`(?i)nnz|work|flops?|population|intermediate|upper|slots?|accum|touched`)

// mentionsScratch reports whether the expression's subtree references a
// scratch-scaled identifier — mentionsNNZ over the extended vocabulary.
func mentionsScratch(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && scratchName.MatchString(id.Name) {
			found = true
			return false
		}
		return !found
	})
	return found
}

func runScratchMake(p *Pass) []Finding {
	if !kernelPackage(p.PkgName) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSliceMake(call) || !insideLoop(stack) {
				return true
			}
			for _, size := range call.Args[1:] {
				if mentionsScratch(size) {
					out = append(out, Finding{
						Pos:      p.position(call),
						Analyzer: "scratchmake",
						Message:  "make of nnz-scaled scratch inside a kernel loop; draw the buffer from the internal/parallel arenas",
					})
					break
				}
			}
			return true
		})
	}
	return out
}

// isSliceMake reports whether the call is the builtin make of a slice
// type.
func isSliceMake(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) < 2 {
		return false
	}
	_, isSlice := call.Args[0].(*ast.ArrayType)
	return isSlice
}

// insideLoop reports whether any enclosing node of the last stack entry is
// a for or range statement.
func insideLoop(stack []ast.Node) bool {
	for _, n := range stack[:len(stack)-1] {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}
