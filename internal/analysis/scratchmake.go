package analysis

import (
	"go/ast"
)

// ScratchMakeAnalyzer enforces the arena rule: inside the kernel packages
// (sparse, kernels, core, pipeline), a loop body must not allocate nnz-scaled
// scratch with make([]...) — dense accumulators, marker arrays, workload
// vectors and triplet buffers cycle through the internal/parallel arenas
// instead. A make inside a row or block loop re-allocates per iteration
// (or per request, for the serving loops one level up), which is exactly
// the GC-pressure pattern the arenas exist to remove; the pool also
// poisons recycled buffers under Paranoid mode, a check a private make
// silently escapes.
func ScratchMakeAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "scratchmake",
		Doc:  "no make([]...) of nnz-scaled scratch inside kernel-package loops; draw it from the internal/parallel arenas",
		Run:  runScratchMake,
	}
}

// kernelPackage reports whether the package holds numeric kernels bound by
// the arena rule. The pipeline package counts: its convergence sweeps and
// normalization passes run once per iteration, so a make inside them
// re-allocates every round of an iterative workload. internal/parallel
// itself is exempt: it is where the sanctioned allocations live.
func kernelPackage(name string) bool {
	switch name {
	case "sparse", "kernels", "core", "pipeline":
		return true
	}
	return false
}

func runScratchMake(p *Pass) []Finding {
	if !kernelPackage(p.PkgName) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSliceMake(call) || !insideLoop(stack) {
				return true
			}
			for _, size := range call.Args[1:] {
				if mentionsNNZ(size) {
					out = append(out, Finding{
						Pos:      p.position(call),
						Analyzer: "scratchmake",
						Message:  "make of nnz-scaled scratch inside a kernel loop; draw the buffer from the internal/parallel arenas",
					})
					break
				}
			}
			return true
		})
	}
	return out
}

// isSliceMake reports whether the call is the builtin make of a slice
// type.
func isSliceMake(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) < 2 {
		return false
	}
	_, isSlice := call.Args[0].(*ast.ArrayType)
	return isSlice
}

// insideLoop reports whether any enclosing node of the last stack entry is
// a for or range statement.
func insideLoop(stack []ast.Node) bool {
	for _, n := range stack[:len(stack)-1] {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}
