package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// SpanPairAnalyzer keeps trace spans balanced. Span and SpanItems return
// a closer; a path that opens a span and returns without invoking the
// closer corrupts the profile's sums-to-wall invariant (the phase
// accumulates wall time it never spent, or the span is simply lost).
// Three shapes are reported:
//
//   - the closer is discarded outright (`rec.Span(x)` as a statement);
//   - `defer rec.Span(x)` — the span opens at function exit and its
//     closer is dropped; the author meant `defer rec.Span(x)()`;
//   - the closer is bound to a variable but some CFG path reaches a
//     return without calling it (directly or via defer).
//
// Returning the closer, or storing it in a struct, transfers ownership
// and is not reported.
func SpanPairAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "spanpair",
		Doc:  "trace span opened but not closed on some path",
		Run:  runSpanPair,
	}
}

func runSpanPair(p *Pass) []Finding {
	var out []Finding
	for _, ff := range p.Facts().Funcs {
		// Calls used as callees of other calls are immediately invoked
		// (`defer rec.Span(x)()`): balanced by construction.
		invoked := map[ast.Expr]bool{}
		for _, cs := range ff.Calls {
			invoked[cs.Call.Fun] = true
		}
		for _, cs := range ff.Calls {
			if !p.isSpanOpen(cs.Call) || invoked[ast.Expr(cs.Call)] {
				continue
			}
			switch s := cs.Node.Stmt.(type) {
			case *ast.ExprStmt:
				if s.X == ast.Expr(cs.Call) {
					out = append(out, Finding{
						Pos:      p.position(cs.Call),
						Analyzer: "spanpair",
						Message:  fmt.Sprintf("closer returned by %s is discarded; the span is never closed", cs.Callee),
					})
				}
			case *ast.DeferStmt:
				if s.Call == cs.Call {
					out = append(out, Finding{
						Pos:      p.position(cs.Call),
						Analyzer: "spanpair",
						Message:  fmt.Sprintf("defer %s(...) opens the span at function exit and drops the closer; write defer %s(...)()", cs.Callee, cs.Callee),
					})
				}
			case *ast.AssignStmt:
				name, ok := closerVar(s, cs.Call)
				if !ok {
					continue
				}
				closes := func(n *Node) bool { return closesSpan(n, name) }
				if ff.Graph.exitReachableFrom(cs.Node, closes) {
					out = append(out, Finding{
						Pos:      p.position(cs.Call),
						Analyzer: "spanpair",
						Message:  fmt.Sprintf("span closer %q is not invoked on every path to return; close it before early returns", name),
					})
				}
			}
		}
	}
	return out
}

// isSpanOpen recognizes Span/SpanItems calls on a trace recorder. With
// type information the receiver must be the trace package's Recorder
// (or the root package's Trace alias of it); without, a receiver named
// rec is accepted.
func (p *Pass) isSpanOpen(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Span" && sel.Sel.Name != "SpanItems") {
		return false
	}
	if t := p.Info.TypeOf(sel.X); t != nil && !isInvalid(t) {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		if obj == nil || obj.Pkg() == nil {
			return false
		}
		name, pkg := obj.Name(), obj.Pkg()
		return (name == "Recorder" || name == "Trace") &&
			(pkg.Name() == "trace" || strings.HasSuffix(pkg.Path(), "/trace"))
	}
	recv := renderExpr(sel.X)
	if i := lastDot(recv); i >= 0 {
		recv = recv[i+1:]
	}
	return recv == "rec" || recv == "tracer"
}

// closerVar extracts the variable the closer is bound to, when the
// assignment binds the call's result to a plain identifier. A blank or
// non-identifier left side transfers ownership out of the function's
// view and is not tracked.
func closerVar(as *ast.AssignStmt, call *ast.CallExpr) (string, bool) {
	if len(as.Lhs) != len(as.Rhs) {
		return "", false
	}
	for i, rhs := range as.Rhs {
		if rhs != ast.Expr(call) {
			continue
		}
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
			return id.Name, true
		}
	}
	return "", false
}

// closesSpan reports whether the node invokes (or defers, or returns —
// ownership transfer) the named closer. Only returning the closer
// itself transfers; a return merely computed from it does not.
func closesSpan(n *Node, name string) bool {
	if ret, ok := n.Stmt.(*ast.ReturnStmt); ok {
		for _, r := range ret.Results {
			if id, ok := r.(*ast.Ident); ok && id.Name == name {
				return true
			}
		}
		return false
	}
	found := false
	shallowInspect(n.Stmt, func(x ast.Node) bool {
		if found {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mentionsIdent reports whether the expression mentions the identifier.
func mentionsIdent(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
			return false
		}
		return true
	})
	return found
}
