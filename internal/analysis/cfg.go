package analysis

import (
	"go/ast"
	"go/token"
)

// A CFG is a lightweight statement-level control-flow graph for one
// function body. Every executable statement becomes one Node; compound
// statements (if, for, switch, select) contribute a header node whose
// successors are the entries of their branches, and their nested bodies
// contribute their own nodes. The graph is intraprocedural: function
// literals nested in the body are separate functions with separate CFGs
// (see Facts), and their statements never appear here.
//
// The builder handles the full statement grammar the project uses:
// if/else chains, for and range loops (including labeled break and
// continue), switch, type switch, select (each comm clause is a node, so
// rules can see sends and receives chosen by a select), defer, and early
// returns. Statements that cannot complete — panic, os.Exit, log.Fatal*,
// runtime.Goexit — get no successors, so paths through them never reach
// Exit and "on all paths to exit" rules ignore them. goto is treated the
// same way (the project bans it stylistically; no rule depends on it).
type CFG struct {
	// Entry is the first executable node (Exit for an empty body).
	Entry *Node
	// Exit is the single synthetic exit node (Stmt == nil). Falling off
	// the end of the body, and every return statement, leads here.
	Exit *Node
	// Nodes lists every node except Exit, in construction order.
	Nodes []*Node
}

// Node is one statement in a CFG.
type Node struct {
	// Stmt is the statement this node executes: the header only, for
	// compound statements (an *ast.IfStmt node evaluates Init and Cond;
	// its branches are separate nodes). Nil exactly for CFG.Exit. Clause
	// nodes carry the *ast.CaseClause / *ast.CommClause itself.
	Stmt ast.Stmt
	// Succs are the possible successors.
	Succs []*Node
}

// Pos returns the node's source position anchor.
func (n *Node) Pos() token.Pos { return n.Stmt.Pos() }

// buildCFG constructs the CFG of one function body.
func buildCFG(body *ast.BlockStmt) *CFG {
	g := &CFG{Exit: &Node{}}
	b := &cfgBuilder{g: g, labels: map[string]*loopTargets{}}
	g.Entry = b.stmts(body.List, g.Exit)
	return g
}

// loopTargets records where break and continue jump for one enclosing
// loop, switch or select (continueTo is nil for the latter two).
type loopTargets struct {
	breakTo    *Node
	continueTo *Node
}

type cfgBuilder struct {
	g *CFG
	// loops is the stack of enclosing break/continue scopes, innermost
	// last. labels maps label names to their statement's scope.
	loops  []*loopTargets
	labels map[string]*loopTargets
	// pendingLabel is the label naming the next loop/switch built, so a
	// labeled break or continue can find it.
	pendingLabel string
}

func (b *cfgBuilder) node(s ast.Stmt) *Node {
	n := &Node{Stmt: s}
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

// stmts builds the list back to front so each statement knows its
// successor, returning the entry node of the list (succ when empty).
func (b *cfgBuilder) stmts(list []ast.Stmt, succ *Node) *Node {
	for i := len(list) - 1; i >= 0; i-- {
		succ = b.stmt(list[i], succ)
	}
	return succ
}

func (b *cfgBuilder) stmt(s ast.Stmt, succ *Node) *Node {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(s.List, succ)

	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		entry := b.stmt(s.Stmt, succ)
		b.pendingLabel = ""
		return entry

	case *ast.IfStmt:
		n := b.node(s)
		n.Succs = append(n.Succs, b.stmts(s.Body.List, succ))
		if s.Else != nil {
			n.Succs = append(n.Succs, b.stmt(s.Else, succ))
		} else {
			n.Succs = append(n.Succs, succ)
		}
		return n

	case *ast.ForStmt:
		n := b.node(s)
		lt := &loopTargets{breakTo: succ, continueTo: n}
		b.pushScope(lt)
		body := b.stmts(s.Body.List, n)
		b.popScope()
		n.Succs = append(n.Succs, body)
		if s.Cond != nil {
			// A conditional loop can be skipped entirely.
			n.Succs = append(n.Succs, succ)
		}
		return n

	case *ast.RangeStmt:
		n := b.node(s)
		lt := &loopTargets{breakTo: succ, continueTo: n}
		b.pushScope(lt)
		body := b.stmts(s.Body.List, n)
		b.popScope()
		n.Succs = append(n.Succs, body, succ)
		return n

	case *ast.SwitchStmt:
		return b.switchLike(s, caseClauses(s.Body), true, succ)

	case *ast.TypeSwitchStmt:
		return b.switchLike(s, caseClauses(s.Body), false, succ)

	case *ast.SelectStmt:
		n := b.node(s)
		lt := &loopTargets{breakTo: succ}
		b.pushScope(lt)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			cn := b.node(cc)
			cn.Succs = append(cn.Succs, b.stmts(cc.Body, succ))
			n.Succs = append(n.Succs, cn)
		}
		b.popScope()
		if len(n.Succs) == 0 {
			// select{} blocks forever; no successors.
			n.Succs = nil
		}
		return n

	case *ast.ReturnStmt:
		n := b.node(s)
		n.Succs = append(n.Succs, b.g.Exit)
		return n

	case *ast.BranchStmt:
		n := b.node(s)
		switch s.Tok {
		case token.BREAK:
			if t := b.target(s.Label); t != nil && t.breakTo != nil {
				n.Succs = append(n.Succs, t.breakTo)
			}
		case token.CONTINUE:
			if t := b.target(s.Label); t != nil && t.continueTo != nil {
				n.Succs = append(n.Succs, t.continueTo)
			}
		case token.FALLTHROUGH:
			// Resolved by switchLike, which rewires fallthrough nodes to
			// the next clause once all clauses exist.
		case token.GOTO:
			// Treated as terminating (see the type comment).
		}
		return n

	default:
		// Simple statements: expr, assign, decl, send, inc/dec, defer,
		// go, empty. A statement that provably never returns terminates
		// its path.
		n := b.node(s)
		if !isTerminalStmt(s) {
			n.Succs = append(n.Succs, succ)
		}
		return n
	}
}

// switchLike builds a switch or type switch: the header node branches to
// each clause node, clause nodes enter their bodies, bodies flow to succ.
// A switch without a default clause can fall through to succ directly.
func (b *cfgBuilder) switchLike(header ast.Stmt, clauses []*ast.CaseClause, allowFallthrough bool, succ *Node) *Node {
	n := b.node(header)
	lt := &loopTargets{breakTo: succ}
	b.pushScope(lt)
	hasDefault := false
	// Build back to front so fallthrough can target the next clause's
	// body entry.
	entries := make([]*Node, len(clauses))
	bodies := make([]*Node, len(clauses))
	for i := len(clauses) - 1; i >= 0; i-- {
		cc := clauses[i]
		if cc.List == nil {
			hasDefault = true
		}
		cn := b.node(cc)
		body := b.stmts(cc.Body, succ)
		cn.Succs = append(cn.Succs, body)
		entries[i] = cn
		bodies[i] = body
	}
	if allowFallthrough {
		for i, cc := range clauses {
			if i+1 < len(clauses) {
				rewireFallthrough(b.g, cc, bodies[i+1])
			}
		}
	}
	b.popScope()
	for _, e := range entries {
		n.Succs = append(n.Succs, e)
	}
	if !hasDefault {
		n.Succs = append(n.Succs, succ)
	}
	return n
}

// rewireFallthrough points the clause's trailing fallthrough node (if
// any) at the next clause's body entry.
func rewireFallthrough(g *CFG, cc *ast.CaseClause, next *Node) {
	if len(cc.Body) == 0 {
		return
	}
	last, ok := cc.Body[len(cc.Body)-1].(*ast.BranchStmt)
	if !ok || last.Tok != token.FALLTHROUGH {
		return
	}
	for _, n := range g.Nodes {
		if n.Stmt == ast.Stmt(last) {
			n.Succs = append(n.Succs, next)
			return
		}
	}
}

func caseClauses(body *ast.BlockStmt) []*ast.CaseClause {
	out := make([]*ast.CaseClause, 0, len(body.List))
	for _, s := range body.List {
		if cc, ok := s.(*ast.CaseClause); ok {
			out = append(out, cc)
		}
	}
	return out
}

func (b *cfgBuilder) pushScope(lt *loopTargets) {
	b.loops = append(b.loops, lt)
	if b.pendingLabel != "" {
		b.labels[b.pendingLabel] = lt
		b.pendingLabel = ""
	}
}

func (b *cfgBuilder) popScope() { b.loops = b.loops[:len(b.loops)-1] }

// target resolves a break/continue label (nil label = innermost scope).
func (b *cfgBuilder) target(label *ast.Ident) *loopTargets {
	if label != nil {
		return b.labels[label.Name]
	}
	if len(b.loops) == 0 {
		return nil
	}
	// continue skips non-loop scopes (switch/select inside a loop).
	for i := len(b.loops) - 1; i >= 0; i-- {
		return b.loops[i]
	}
	return nil
}

// isTerminalStmt reports whether the statement provably never returns:
// a direct call to panic, os.Exit, runtime.Goexit, or log.Fatal*.
func isTerminalStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fn.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case pkg.Name == "os" && fn.Sel.Name == "Exit":
			return true
		case pkg.Name == "runtime" && fn.Sel.Name == "Goexit":
			return true
		case pkg.Name == "log" && (fn.Sel.Name == "Fatal" || fn.Sel.Name == "Fatalf" || fn.Sel.Name == "Fatalln"):
			return true
		}
	}
	return false
}

// --- reachability queries ---

// exitReachableFrom reports whether Exit is reachable from start's
// successors without passing through a node satisfying absorb. start
// itself is not tested — rules use this to ask "after acquiring here,
// is there a path to the end of the function that skips the release?".
func (g *CFG) exitReachableFrom(start *Node, absorb func(*Node) bool) bool {
	seen := map[*Node]bool{start: true}
	var dfs func(*Node) bool
	dfs = func(n *Node) bool {
		if n == g.Exit {
			return true
		}
		if seen[n] {
			return false
		}
		seen[n] = true
		if absorb(n) {
			return false
		}
		for _, s := range n.Succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	for _, s := range start.Succs {
		if dfs(s) {
			return true
		}
	}
	return false
}

// exitReachable is exitReachableFrom starting at (and testing) Entry —
// the whole-function form used for goroutine bodies.
func (g *CFG) exitReachable(absorb func(*Node) bool) bool {
	if g.Entry == g.Exit {
		return true // empty body: exit without ever absorbing
	}
	pre := &Node{Succs: []*Node{g.Entry}}
	return g.exitReachableFrom(pre, absorb)
}

// visitReachable walks every node reachable from start's successors,
// calling visit on each, without crossing nodes satisfying stop (stop
// nodes are neither visited nor traversed past). Rules use this to scan
// a mutex's held region.
func (g *CFG) visitReachable(start *Node, stop func(*Node) bool, visit func(*Node)) {
	seen := map[*Node]bool{start: true}
	var dfs func(*Node)
	dfs = func(n *Node) {
		if n == g.Exit || seen[n] {
			return
		}
		seen[n] = true
		if stop(n) {
			return
		}
		visit(n)
		for _, s := range n.Succs {
			dfs(s)
		}
	}
	for _, s := range start.Succs {
		dfs(s)
	}
}

// nodeFor returns the node whose Stmt is s, or nil.
func (g *CFG) nodeFor(s ast.Stmt) *Node {
	for _, n := range g.Nodes {
		if n.Stmt == s {
			return n
		}
	}
	return nil
}

// shallowInspect walks the AST evaluated at the node's own statement —
// the header expressions of compound statements, the whole statement for
// simple ones — pruning nested statement bodies (they have their own
// nodes) and function literals (they are separate functions).
func shallowInspect(s ast.Stmt, f func(ast.Node) bool) {
	walk := func(n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			switch n.(type) {
			case *ast.FuncLit, *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
				return false
			}
			return f(n)
		})
	}
	switch s := s.(type) {
	case *ast.IfStmt:
		walk(s.Init)
		walk(s.Cond)
	case *ast.ForStmt:
		walk(s.Init)
		walk(s.Cond)
		walk(s.Post)
	case *ast.RangeStmt:
		walk(s.Key)
		walk(s.Value)
		walk(s.X)
	case *ast.SwitchStmt:
		walk(s.Init)
		walk(s.Tag)
	case *ast.TypeSwitchStmt:
		walk(s.Init)
		walk(s.Assign)
	case *ast.SelectStmt:
		// Pure control; the comm clauses are their own nodes.
	case *ast.CaseClause:
		for _, e := range s.List {
			walk(e)
		}
	case *ast.CommClause:
		walk(s.Comm)
	case *ast.LabeledStmt:
		// The inner statement has its own node.
	default:
		walk(s)
	}
}
