package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// FileHandleAnalyzer tracks file descriptor lifetimes: a handle opened
// with os.Open / os.Create / os.OpenFile / os.CreateTemp must reach a
// Close on every path out of the function. The out-of-core engine opens
// panel, spill, and scratch files in loops; a handle leaked on an error
// path there is not garbage the GC cleans up promptly — it is a
// descriptor held until finalization, and a tiled multiply over a large
// grid can exhaust the process limit long before that.
//
// What the CFG walk accepts as settling the handle:
//
//   - a Close call naming the handle, direct or deferred;
//   - a return whose result is the handle itself — ownership transfers
//     to the caller;
//   - a return on the open's own error path (the result mentions the
//     error bound alongside the handle): the handle was never opened.
//
// A handle assigned into a struct field, slice element, or map entry
// escapes the function's view — the container owns the lifetime — and
// is not tracked. Passing the handle to another function does not
// transfer ownership: the project's helpers read or write through the
// handle and leave closing to the opener.
func FileHandleAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "filehandle",
		Doc:  "file opened but not closed on some path",
		Run:  runFileHandle,
	}
}

// openers are the os functions returning a (*os.File, error) the rule
// tracks.
var openers = map[string]bool{
	"Open":       true,
	"Create":     true,
	"OpenFile":   true,
	"CreateTemp": true,
}

func runFileHandle(p *Pass) []Finding {
	var out []Finding
	for _, ff := range p.Facts().Funcs {
		for _, node := range ff.Graph.Nodes {
			as, ok := node.Stmt.(*ast.AssignStmt)
			// The idiomatic acquire is the two-value form
			// `f, err := os.Open(path)`; anything else either does not
			// compile or escapes immediately (field destination).
			if !ok || len(as.Lhs) != 2 || len(as.Rhs) != 1 {
				continue
			}
			call, opener := osOpen(as.Rhs[0])
			if call == nil {
				continue
			}
			id, ok := as.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			errName := ""
			if eid, ok := as.Lhs[1].(*ast.Ident); ok && eid.Name != "_" {
				errName = eid.Name
			}
			if handleEscapes(ff, id.Name, as) {
				continue
			}
			settled := func(n *Node) bool { return settlesHandle(n, id.Name, errName) }
			if ff.Graph.exitReachableFrom(node, settled) {
				out = append(out, Finding{
					Pos:      p.position(call),
					Analyzer: "filehandle",
					Message: fmt.Sprintf("%q from os.%s is not closed on every path to return; close it before early returns or defer %s.Close()",
						id.Name, opener, id.Name),
				})
			}
		}
	}
	return out
}

// osOpen unwraps an os opener call, returning the call and the opener
// name, or nil. Matching is syntactic — the fixture loader stubs the
// standard library — and the "os" qualifier keeps lookalike methods
// (dec.Open, cache.Create) out.
func osOpen(e ast.Expr) (*ast.CallExpr, string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	callee := renderCallee(call)
	if name, found := strings.CutPrefix(callee, "os."); found && openers[name] {
		return call, name
	}
	return nil, ""
}

// handleEscapes extends the shared escape check with composite-literal
// capture: `&SegWriter{f: f}` hands the handle to a container whose
// Close owns it from then on.
func handleEscapes(ff *FuncFacts, name string, acquire *ast.AssignStmt) bool {
	if escapes(ff, name, acquire) {
		return true
	}
	esc := false
	ast.Inspect(ff.Body, func(n ast.Node) bool {
		if esc {
			return false
		}
		if cl, ok := n.(*ast.CompositeLit); ok && mentionsIdent(cl, name) {
			esc = true
			return false
		}
		return true
	})
	return esc
}

// settlesHandle reports whether the node closes the named handle, hands
// it to the caller, or returns along the open's error path.
func settlesHandle(n *Node, name, errName string) bool {
	// A Close call anywhere in the statement — direct, deferred, or as a
	// return value (`return f.Close()`) — settles the handle.
	found := false
	shallowInspect(n.Stmt, func(x ast.Node) bool {
		if found {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if renderCallee(call) == name+".Close" {
			found = true
			return false
		}
		return true
	})
	if found {
		return true
	}
	ret, ok := n.Stmt.(*ast.ReturnStmt)
	if !ok {
		return false
	}
	for _, r := range ret.Results {
		if id, ok := r.(*ast.Ident); ok && id.Name == name {
			return true
		}
		// The error path: the open failed, the handle is nil and there
		// is nothing to close. A bare error return after a successful
		// open also matches — acceptable imprecision, the repo idiom
		// defers the close right after the error check.
		if errName != "" && mentionsIdent(r, errName) {
			return true
		}
	}
	return false
}
