package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression comments let a human overrule a rule at one site, with an
// enforced audit trail:
//
//	//vet:ignore lockheld -- metrics channel is buffered and never full
//
// The directive names one or more rules (comma-separated, or "all") and
// must carry a reason after " -- "; a reasonless directive is itself
// reported as a "vetignore" finding, so suppressions cannot silently
// accumulate. A directive covers findings on its own line (trailing
// comment) and on the line directly below it (comment-above style).
// Suppressed findings are not dropped: RunAllResult returns them
// separately so drivers can surface a count.

const ignorePrefix = "//vet:ignore"

// directive is one parsed //vet:ignore comment.
type directive struct {
	pos   token.Position
	rules map[string]bool // nil means malformed
	all   bool
}

// covers reports whether the directive applies to the finding.
func (d *directive) covers(f Finding) bool {
	if d.pos.Filename != f.Pos.Filename {
		return false
	}
	if f.Pos.Line != d.pos.Line && f.Pos.Line != d.pos.Line+1 {
		return false
	}
	return d.all || d.rules[f.Analyzer]
}

// directives parses every //vet:ignore comment in the pass, returning
// the well-formed directives and a finding per malformed one.
func (p *Pass) directives() ([]*directive, []Finding) {
	var dirs []*directive
	var bad []Finding
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				d, ok := parseDirective(c, pos)
				if !ok {
					bad = append(bad, Finding{
						Pos:      pos,
						Analyzer: "vetignore",
						Message:  `malformed //vet:ignore: want "//vet:ignore rule[,rule] -- reason"`,
					})
					continue
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs, bad
}

// parseDirective splits "//vet:ignore rule,rule -- reason". Both the
// rule list and a non-empty reason are required.
func parseDirective(c *ast.Comment, pos token.Position) (*directive, bool) {
	rest := strings.TrimPrefix(c.Text, ignorePrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false // "//vet:ignoreX" is not a directive we accept
	}
	rulesPart, reason, found := strings.Cut(rest, " -- ")
	if !found || strings.TrimSpace(reason) == "" {
		return nil, false
	}
	d := &directive{pos: pos, rules: map[string]bool{}}
	for _, r := range strings.Split(rulesPart, ",") {
		r = strings.TrimSpace(r)
		if r == "" {
			return nil, false
		}
		if r == "all" {
			d.all = true
			continue
		}
		d.rules[r] = true
	}
	if !d.all && len(d.rules) == 0 {
		return nil, false
	}
	return d, true
}

// applySuppressions splits findings into kept and suppressed according
// to the directives, appending any malformed-directive findings to kept.
func applySuppressions(findings []Finding, dirs []*directive, bad []Finding) (kept, suppressed []Finding) {
	kept = append(kept, bad...)
	for _, f := range findings {
		hit := false
		for _, d := range dirs {
			if d.covers(f) {
				hit = true
				break
			}
		}
		if hit {
			suppressed = append(suppressed, f)
		} else {
			kept = append(kept, f)
		}
	}
	return kept, suppressed
}
