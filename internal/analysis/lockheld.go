package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// LockHeldAnalyzer flags mutexes held across blocking operations. A
// channel send, a bare receive, a WaitGroup (or any other) Wait, a
// select with no default clause, time.Sleep, or a call into a blocking
// I/O package while a sync.Mutex is held is how the serving layer
// deadlocks: the blocked goroutine keeps the lock the unblocking
// goroutine needs. The rule walks the CFG region between each Lock and
// its matching same-receiver Unlock — the whole rest of the function
// when the unlock is deferred — and reports every blocking statement in
// it. A select that has a default clause is non-blocking by
// construction and is not reported (the queue-full fast path in
// server.enqueue is the motivating example).
func LockHeldAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "lockheld",
		Doc:  "mutex held across channel send, Wait, or blocking I/O",
		Run:  runLockHeld,
	}
}

func runLockHeld(p *Pass) []Finding {
	var out []Finding
	for _, ff := range p.Facts().Funcs {
		for _, op := range ff.Mutex {
			if !op.Acquire() || op.Deferred {
				continue
			}
			release := releaseMethod(op.Method)
			stop := func(n *Node) bool {
				for _, r := range ff.Mutex {
					if r.Node == n && !r.Deferred && r.Method == release && r.Recv == op.Recv {
						return true
					}
				}
				return false
			}
			held := fmt.Sprintf("%s (locked at line %d)", op.Recv, p.position(op.Call).Line)
			ff.Graph.visitReachable(op.Node, stop, func(n *Node) {
				if what := blockingOp(n); what != "" {
					out = append(out, Finding{
						Pos:      p.position(n.Stmt),
						Analyzer: "lockheld",
						Message:  fmt.Sprintf("%s held across %s; release the lock before blocking", held, what),
					})
				}
			})
		}
	}
	return out
}

func releaseMethod(acquire string) string {
	if acquire == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}

// blockingOp describes the blocking operation the node performs, or ""
// when it cannot block. Comm clauses are never reported directly: their
// select header already decided blocking-ness (default clause present or
// not), and reporting both would double-count one site.
func blockingOp(n *Node) string {
	switch s := n.Stmt.(type) {
	case *ast.SendStmt:
		return "channel send"
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				return "" // default clause: non-blocking
			}
		}
		return "blocking select"
	case *ast.CommClause:
		return ""
	}
	what := ""
	shallowInspect(n.Stmt, func(x ast.Node) bool {
		if what != "" {
			return false
		}
		switch x := x.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				what = "channel receive"
				return false
			}
		case *ast.SendStmt:
			what = "channel send"
			return false
		case *ast.CallExpr:
			callee := renderCallee(x)
			switch {
			case strings.HasSuffix(callee, ".Wait"):
				what = callee + "()"
				return false
			case callee == "time.Sleep":
				what = "time.Sleep"
				return false
			case strings.HasPrefix(callee, "io.") || strings.HasPrefix(callee, "http.") ||
				strings.HasPrefix(callee, "net.") || strings.HasPrefix(callee, "exec."):
				what = "blocking I/O call " + callee
				return false
			}
		}
		return true
	})
	return what
}
