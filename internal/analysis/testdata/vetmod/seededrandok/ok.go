// Package seededrandok routes all randomness through seeded sources; the
// seededrand analyzer must stay silent here.
package seededrandok

import "math/rand/v2"

// Generator builds the sanctioned deterministic source.
func Generator(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// Sample draws from an explicitly seeded generator — fine, the methods of
// a *rand.Rand are not the package-level globals.
func Sample(rng *rand.Rand, n int) int {
	return rng.IntN(n)
}

// shadow demonstrates that a local named rand does not confuse the
// analyzer once types resolve.
type shadow struct{}

func (shadow) Float64() float64 { return 0.5 }

// Shadowed calls a method on a value named rand — not the package.
func Shadowed() float64 {
	rand := shadow{}
	return rand.Float64()
}
