// Package ctxflowbad is a fixture for the ctxflow analyzer: contexts
// dropped or ignored on the way to the work.
package ctxflowbad

import "context"

// RunDetached receives ctx but hands the work a fresh root context,
// severing the caller's deadline.
func RunDetached(ctx context.Context, work func(context.Context)) {
	work(context.Background())
	_ = ctx
}

// IgnoredDeadline takes ctx and never consults it.
func IgnoredDeadline(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// TODOInLiteral severs the context inside a nested closure; capturing
// scope still has the parameter.
func TODOInLiteral(ctx context.Context, work func(context.Context)) {
	run := func() {
		work(context.TODO())
	}
	run()
	_ = ctx
}

// DerivedFromFresh rebinds the parameter from a Background-derived
// context — the nil-guard exemption must not cover indirection through
// WithCancel.
func DerivedFromFresh(ctx context.Context, work func(context.Context)) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	work(ctx)
}
