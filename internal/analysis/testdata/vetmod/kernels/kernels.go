// Package kernels is a fixture mirroring the real kernels package: the
// kernelvalidate analyzer must flag GoodAndBad's bad half only.
package kernels

import "example.com/vetmod/sparse"

// checkShapes stands in for the real validation gate.
func checkShapes(a, b *sparse.CSR) error { return nil }

// MultiplyGood gates its operands — not a violation.
func MultiplyGood(a, b *sparse.CSR) error {
	if err := checkShapes(a, b); err != nil {
		return err
	}
	return nil
}

// MultiplyDeep validates explicitly — not a violation.
func MultiplyDeep(a *sparse.CSR) error {
	if err := a.CheckDeep(); err != nil {
		return err
	}
	return nil
}

// MultiplyBad touches its operands with no gate — violation.
func MultiplyBad(a, b *sparse.CSR) int { // want kernelvalidate
	idx, _ := a.Row(0)
	return len(idx) + b.Rows
}

// scratch is unexported, so the entry-point rule does not apply.
func scratch(a *sparse.CSR) int {
	return a.Rows
}

// Tune takes no sparse operands — out of scope.
func Tune(factor int) int {
	return factor * 2
}
