// Provides things, without naming the package first.
package pkgdocprefix

func Helper() int { return 1 }
