// Package goroleakbad is a fixture for the goroleak analyzer:
// goroutines that can finish without anything to join them.
package goroleakbad

import "sync"

// LaunchForgotten fires a goroutine that signals nobody.
func LaunchForgotten(work func()) {
	go func() {
		work()
	}()
}

// EarlyReturnSkipsDone registers the Done only after a conditional
// return, so the quick path finishes unjoined and Wait hangs.
func EarlyReturnSkipsDone(wg *sync.WaitGroup, quick bool, work func()) {
	wg.Add(1)
	go func() {
		if quick {
			return
		}
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// NamedNoJoin launches a named worker with no join machinery in the
// launching function at all.
func NamedNoJoin() {
	go background()
}

func background() {}
