// Package poolreturnok is the negative fixture for the poolreturn
// analyzer: buffers released on every path, deferred puts, handoffs,
// and escapes into containers.
package poolreturnok

import (
	"errors"

	"example.com/vetmod/parallel"
)

var errBad = errors.New("bad input")

// BalancedPaths puts the buffer back on the error path and the main
// path alike.
func BalancedPaths(n int, fail bool) (float64, error) {
	acc := parallel.GetFloats(n)
	if fail {
		parallel.PutFloats(acc)
		return 0, errBad
	}
	total := 0.0
	for _, v := range acc {
		total += v
	}
	parallel.PutFloats(acc)
	return total, nil
}

// DeferredPut releases at function exit whatever path runs.
func DeferredPut(n int, fail bool) (int, error) {
	work := parallel.GetInt64s(n)
	defer parallel.PutInt64s(work)
	if fail {
		return 0, errBad
	}
	return len(work), nil
}

// HandedOff returns the buffer itself; ownership moves to the caller.
func HandedOff(n int) []int {
	buf := parallel.GetInts(n)
	return buf
}

// ResliceBalanced appends into the [:0] view and still puts it back.
func ResliceBalanced(n int, vs []int) int {
	touched := parallel.GetInts(n)[:0]
	for _, v := range vs {
		touched = append(touched, v)
	}
	count := len(touched)
	parallel.PutInts(touched)
	return count
}

// Stored escapes into a struct field; the container owns the lifetime.
type cache struct{ buf []float64 }

func (c *cache) fill(n int) {
	c.buf = parallel.GetFloats(n)
}
