// Package poolreturnbad is a fixture for the poolreturn analyzer: arena
// buffers leaked on some path out of the function.
package poolreturnbad

import (
	"errors"

	"example.com/vetmod/parallel"
)

var errBad = errors.New("bad input")

// LeakOnError drops the buffer on the early error return.
func LeakOnError(n int, fail bool) (float64, error) {
	acc := parallel.GetFloats(n)
	if fail {
		return 0, errBad
	}
	total := 0.0
	for _, v := range acc {
		total += v
	}
	parallel.PutFloats(acc)
	return total, nil
}

// ForgottenEntirely never returns the buffer at all.
func ForgottenEntirely(n int) int {
	marker := parallel.GetIntsZeroed(n)
	count := 0
	for _, v := range marker {
		if v == 0 {
			count++
		}
	}
	return count
}

// ResliceLeak leaks through the [:0] acquisition idiom; computing the
// return value from the buffer is not a handoff.
func ResliceLeak(n int, vs []int) int {
	touched := parallel.GetInts(n)[:0]
	for _, v := range vs {
		if v > 0 {
			touched = append(touched, v)
		}
	}
	count := len(touched)
	return count
}
