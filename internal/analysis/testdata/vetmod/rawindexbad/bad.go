// Package rawindexbad seeds rawindex violations: direct indexing and
// slicing of CSR/CSC storage outside the sparse package.
package rawindexbad

import "example.com/vetmod/sparse"

// FirstColIdx indexes Idx directly — violation.
func FirstColIdx(m *sparse.CSR) int {
	return m.Idx[0] // want rawindex
}

// RowSlice slices Val directly — violation.
func RowSlice(m *sparse.CSC, j int) []float64 {
	return m.Val[m.Ptr[j]:m.Ptr[j+1]] // want rawindex (three findings: Val slice, two Ptr indexes)
}

// WritePtr writes through Ptr — violation.
func WritePtr(m *sparse.CSR, i, v int) {
	m.Ptr[i+1] = v // want rawindex
}
