// Package sparse is a fixture stub mirroring the real sparse package's
// surface, so the analyzers under test see the same shapes.
package sparse

// CSR mirrors the real compressed sparse row type.
type CSR struct {
	Rows, Cols int
	Ptr        []int
	Idx        []int
	Val        []float64
}

// CSC mirrors the real compressed sparse column type.
type CSC struct {
	Rows, Cols int
	Ptr        []int
	Idx        []int
	Val        []float64
}

// Row returns row i's indices and values. Inside the sparse package raw
// indexing is allowed; this is the sanctioned accessor.
func (m *CSR) Row(i int) ([]int, []float64) {
	lo, hi := m.Ptr[i], m.Ptr[i+1]
	return m.Idx[lo:hi], m.Val[lo:hi]
}

// Col returns column j's indices and values.
func (m *CSC) Col(j int) ([]int, []float64) {
	lo, hi := m.Ptr[j], m.Ptr[j+1]
	return m.Idx[lo:hi], m.Val[lo:hi]
}

// Validate is the shallow structural check.
func (m *CSR) Validate() error { return nil }

// CheckDeep is the deep sanitizer.
func (m *CSR) CheckDeep() error { return nil }
