// Package trace is a fixture stand-in for the real phase recorder: just
// enough surface — Span and SpanItems returning closers — for the
// spanpair analyzer's type-based receiver matching.
package trace

// Recorder mirrors the real recorder's span surface.
type Recorder struct{ open int }

// Span opens a span and returns its closer.
func (r *Recorder) Span(phase string) func() {
	r.open++
	return func() { r.open-- }
}

// SpanItems is Span with an item count attached.
func (r *Recorder) SpanItems(phase string, items int64) func() {
	r.open++
	return func() { r.open-- }
}
