package vendored

// Undocumented vendored code: if the loader ever descended into vendor
// trees, the missing package doc above would surface as a pkgdoc
// finding and the regression test would catch it.
func Touch(vs []int) int {
	total := 0
	for _, v := range vs {
		total += v
	}
	return total
}
