package pkgdocbad

// Helper has a doc comment, but the package clause does not — the rule
// wants package-level documentation, not symbol docs.
func Helper() int { return 1 }
