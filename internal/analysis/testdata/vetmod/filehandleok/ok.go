// Package filehandleok is the negative fixture for the filehandle
// analyzer: handles deferred closed, closed on every path, handed to the
// caller, or escaped into a container that owns them.
package filehandleok

import (
	"errors"
	"os"
)

var errNegative = errors.New("negative count")

// DeferClose is the canonical settled form.
func DeferClose(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, 16)
	_, err = f.Read(buf)
	return err
}

// CloseBeforeEveryReturn closes explicitly on both paths.
func CloseBeforeEveryReturn(path string, n int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if n < 0 {
		f.Close()
		return errNegative
	}
	return f.Close()
}

// HandedOff returns the handle; closing is now the caller's job.
func HandedOff(path string) (*os.File, error) {
	f, err := os.CreateTemp("", path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// writer owns the handle stored into it.
type writer struct {
	f *os.File
}

// FieldEscape stores the handle into a struct; the container's Close
// owns the lifetime and the rule stops tracking.
func FieldEscape(path string) (*writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &writer{}
	w.f = f
	return w, nil
}

// CompositeEscape captures the handle in a composite literal; the
// container owns the lifetime.
func CompositeEscape(path string) (*writer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &writer{f: f}, nil
}

// Discarded never binds the handle; there is nothing to track.
func Discarded(path string) {
	_, _ = os.Open(path)
}
