// Package spanpairbad is a fixture for the spanpair analyzer: spans
// opened but not closed on some path.
package spanpairbad

import (
	"errors"

	"example.com/vetmod/trace"
)

var errNegative = errors.New("negative item")

// DiscardedCloser drops the closer on the floor; the span never closes.
func DiscardedCloser(rec *trace.Recorder, n int) int {
	rec.Span("expand")
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// DeferredOpen defers the open instead of the close.
func DeferredOpen(rec *trace.Recorder, work func()) {
	defer rec.Span("merge")
	work()
}

// EarlyReturnLeavesOpen skips the closer on the error path.
func EarlyReturnLeavesOpen(rec *trace.Recorder, items []int) (int, error) {
	end := rec.SpanItems("scatter", int64(len(items)))
	total := 0
	for _, v := range items {
		if v < 0 {
			return 0, errNegative
		}
		total += v
	}
	end()
	return total, nil
}
