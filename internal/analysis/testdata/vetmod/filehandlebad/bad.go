// Package filehandlebad is a fixture for the filehandle analyzer: files
// opened but not closed on some path out of the function.
package filehandlebad

import (
	"errors"
	"os"
)

var errNegative = errors.New("negative count")

// NeverClosed opens the file and leaks it on the success path.
func NeverClosed(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	buf := make([]byte, 16)
	if _, err := f.Read(buf); err != nil {
		return err
	}
	return nil
}

// EarlyReturnLeavesOpen closes on the tail but leaks on the guard.
func EarlyReturnLeavesOpen(path string, n int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if n < 0 {
		return errNegative
	}
	f.Close()
	return nil
}

// CloseOnlyOnBranch settles one arm of the if and forgets the other.
func CloseOnlyOnBranch(path string, flush bool) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if flush {
		f.Close()
		return nil
	}
	return nil
}
