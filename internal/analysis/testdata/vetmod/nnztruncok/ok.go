// Package nnztruncok performs conversions the nnztrunc analyzer must
// accept: widening nnz arithmetic, narrowing values that are not
// nnz-scaled, and re-narrowing already-narrow values.
package nnztruncok

// WidenWork widens a workload — fine.
func WidenWork(work int) int64 {
	return int64(work)
}

// ColorByte narrows a value with no nnz-scaled name — fine.
func ColorByte(color int) uint8 {
	return uint8(color)
}

// RepackLane re-narrows an already-narrow lane id mentioning work — fine,
// the source is already int32 so nothing truncates.
func RepackLane(workLane int32) int32 {
	return int32(workLane)
}

// FloatWork converts workload to float64 for a ratio — fine, not a
// narrow integer target.
func FloatWork(work int64, total int64) float64 {
	return float64(work) / float64(total)
}
