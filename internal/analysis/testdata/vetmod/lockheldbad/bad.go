// Package lockheldbad is a fixture for the lockheld analyzer: mutexes
// held across blocking operations.
package lockheldbad

import "sync"

var mu sync.Mutex

var ch = make(chan int)

// SendUnderLock holds mu across a channel send.
func SendUnderLock(v int) {
	mu.Lock()
	ch <- v // blocked senders keep the lock
	mu.Unlock()
}

// WaitUnderDeferredLock holds mu, via the deferred unlock, across a
// WaitGroup wait and a receive.
func WaitUnderDeferredLock(wg *sync.WaitGroup) int {
	mu.Lock()
	defer mu.Unlock()
	wg.Wait()
	return <-ch
}

// BlockingSelect holds mu across a select with no default clause.
func BlockingSelect() int {
	mu.Lock()
	defer mu.Unlock()
	select {
	case v := <-ch:
		return v
	}
}
