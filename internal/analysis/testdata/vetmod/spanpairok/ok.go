// Package spanpairok is the negative fixture for the spanpair analyzer:
// spans closed on every path, deferred closes, and ownership handoffs.
package spanpairok

import (
	"errors"

	"example.com/vetmod/trace"
)

var errNegative = errors.New("negative item")

// DeferClose is the canonical balanced form.
func DeferClose(rec *trace.Recorder, work func()) {
	defer rec.Span("expand")()
	work()
}

// CloseBeforeEveryReturn invokes the closer on the error path too.
func CloseBeforeEveryReturn(rec *trace.Recorder, items []int) (int, error) {
	end := rec.SpanItems("scatter", int64(len(items)))
	total := 0
	for _, v := range items {
		if v < 0 {
			end()
			return 0, errNegative
		}
		total += v
	}
	end()
	return total, nil
}

// HandedOff returns the closer; the span is now the caller's to close.
func HandedOff(rec *trace.Recorder) func() {
	end := rec.Span("merge")
	return end
}

// DeferredVariable closes through a deferred variable call.
func DeferredVariable(rec *trace.Recorder, work func()) {
	done := rec.Span("merge")
	defer done()
	work()
}
