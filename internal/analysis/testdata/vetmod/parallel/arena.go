// Package parallel is a fixture stand-in for the real scratch arenas:
// the Get/Put surface the poolreturn analyzer pairs up.
package parallel

// GetFloats leases a float buffer; pair with PutFloats.
func GetFloats(n int) []float64 { return make([]float64, n) }

// PutFloats returns a GetFloats buffer.
func PutFloats([]float64) {}

// GetInts leases an int buffer; pair with PutInts.
func GetInts(n int) []int { return make([]int, n) }

// GetIntsZeroed is GetInts with guaranteed zeroing; pair with PutInts.
func GetIntsZeroed(n int) []int { return make([]int, n) }

// PutInts returns a GetInts or GetIntsZeroed buffer.
func PutInts([]int) {}

// GetInt64s leases an int64 buffer; pair with PutInt64s.
func GetInt64s(n int) []int64 { return make([]int64, n) }

// PutInt64s returns a GetInt64s buffer.
func PutInt64s([]int64) {}
