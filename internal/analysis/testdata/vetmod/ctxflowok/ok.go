// Package ctxflowok is the negative fixture for the ctxflow analyzer:
// contexts threaded, the nil-guard rebind, and declared-intent ignores.
package ctxflowok

import "context"

// Threaded passes the caller's context straight through.
func Threaded(ctx context.Context, work func(context.Context)) {
	work(ctx)
}

// NilGuard rebinds a nil parameter in place — the one legitimate
// Background call in a ctx-receiving function.
func NilGuard(ctx context.Context, work func(context.Context)) {
	if ctx == nil {
		ctx = context.Background()
	}
	work(ctx)
}

// Root has no context parameter: creating the root context is its job.
func Root(work func(context.Context)) {
	work(context.Background())
}

// Forced names the interface-imposed parameter _ to declare the intent.
func Forced(_ context.Context, n int) int {
	return n * 2
}

// UsedInLiteral consumes the context inside a closure; capture counts
// as use.
func UsedInLiteral(ctx context.Context, work func(context.Context)) func() {
	return func() { work(ctx) }
}
