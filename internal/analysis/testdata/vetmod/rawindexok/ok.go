// Package rawindexok uses only the sanctioned accessors plus its own
// unrelated Ptr/Idx/Val-free structures; the rawindex analyzer must stay
// silent here.
package rawindexok

import "example.com/vetmod/sparse"

// SumRow reads a row through the accessor.
func SumRow(m *sparse.CSR, i int) float64 {
	_, val := m.Row(i)
	var s float64
	for _, v := range val {
		s += v
	}
	return s
}

// ColDegree reads a column through the accessor.
func ColDegree(m *sparse.CSC, j int) int {
	idx, _ := m.Col(j)
	return len(idx)
}

// localBuf has fields named like storage but is not a sparse matrix;
// indexing it is fine because its type resolves to a local struct.
type localBuf struct {
	Idx []int
}

// Peek indexes a non-sparse Idx field — not a violation.
func Peek(b *localBuf) int {
	return b.Idx[0]
}
