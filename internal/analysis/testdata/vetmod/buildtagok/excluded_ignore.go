//go:build ignore

// Generator-style file excluded by the conventional ignore tag. The
// arena leak below must never be reported: the loader skips this file
// the way the go tool does.
package buildtagok

import "example.com/vetmod/parallel"

// LeakyGenerator would trip poolreturn if this file were loaded.
func LeakyGenerator(n int) int {
	buf := parallel.GetInts(n)
	count := len(buf)
	return count
}
