// Package buildtagok is a fixture for build-constraint handling in the
// loader: this file is ordinary, while its excluded siblings carry
// violations that must never load.
package buildtagok

// Sum is plain, violation-free code.
func Sum(vs []int) int {
	total := 0
	for _, v := range vs {
		total += v
	}
	return total
}
