//go:build someundefinedtag && !windows

// Platform-gated file whose tag never holds on the loading host; the
// legacy-style leak below must stay invisible.
package buildtagok

import "example.com/vetmod/parallel"

// LeakyPlatform would trip poolreturn if this file were loaded.
func LeakyPlatform(n int) float64 {
	acc := parallel.GetFloats(n)
	total := 0.0
	for _, v := range acc {
		total += v
	}
	return total
}
