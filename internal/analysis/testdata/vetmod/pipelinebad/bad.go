// Package pipeline is the violating fixture for the pipeline-package
// rules: raw CSR storage access (rawindex) and per-iteration nnz-scaled
// scratch allocation (scratchmake), both forbidden in the engine.
package pipeline

import "example.com/vetmod/sparse"

// ColumnPeek indexes Idx and Val directly instead of going through the
// Row accessor — two rawindex violations.
func ColumnPeek(m *sparse.CSR) float64 {
	return float64(m.Idx[0]) + m.Val[0] // want rawindex x2
}

// SweepRows slices row storage by hand — rawindex violations on the
// slice and its Ptr bounds.
func SweepRows(m *sparse.CSR, i int) []float64 {
	return m.Val[m.Ptr[i]:m.Ptr[i+1]] // want rawindex x3
}

// ChaosSweep allocates the dense per-column scratch inside the iteration
// loop — a scratchmake violation now that pipeline is a kernel package.
func ChaosSweep(iterations, nnzCols int) float64 {
	var chaos float64
	for it := 0; it < iterations; it++ {
		colMax := make([]float64, nnzCols) // want scratchmake
		colMax[0] = float64(it)
		chaos = colMax[0]
	}
	return chaos
}
