// Package suppressok is a fixture for //vet:ignore: real violations,
// each suppressed by a reasoned directive — the run must report none of
// them and count both as suppressed.
package suppressok

import "example.com/vetmod/parallel"

// LeakForPoison deliberately keeps the buffer out of the pool; the
// directive on the line above the acquisition covers it.
func LeakForPoison(n int) int {
	//vet:ignore poolreturn -- poison-check harness keeps the buffer live on purpose
	acc := parallel.GetFloats(n)
	return len(acc)
}

// FireAndForget is a deliberately detached goroutine; the trailing
// directive on the launch line covers it.
func FireAndForget(work func()) {
	go func() { work() }() //vet:ignore goroleak -- best-effort flush, detaching is the point
}
