// Package suppressbad is a fixture for malformed //vet:ignore
// directives: a missing reason or a missing rule list is itself a
// reported finding, so suppressions cannot silently accumulate.
package suppressbad

//vet:ignore poolreturn
func reasonless() {}

//vet:ignore -- a reason with no rule list
func ruleless() {}

func init() {
	reasonless()
	ruleless()
}
