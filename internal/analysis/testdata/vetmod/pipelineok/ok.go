// Package pipeline is the clean fixture for the pipeline-package rules:
// storage reached through the Row accessor, and iteration scratch either
// hoisted out of the loop or not nnz-scaled.
package pipeline

import "example.com/vetmod/sparse"

// RowSum uses the sanctioned accessor — no raw storage access.
func RowSum(m *sparse.CSR, i int) float64 {
	_, vals := m.Row(i)
	var s float64
	for _, v := range vals {
		s += v
	}
	return s
}

// HoistedSweep allocates the dense scratch once, outside the iteration
// loop — the sanctioned shape when an arena is not used.
func HoistedSweep(iterations, nnzCols int) float64 {
	colMax := make([]float64, nnzCols)
	var chaos float64
	for it := 0; it < iterations; it++ {
		colMax[0] = float64(it)
		chaos = colMax[0]
	}
	return chaos
}

// SmallState makes a fixed-size buffer in the loop; its size is not
// nnz-scaled, so the rule leaves it alone.
func SmallState(iterations int) int {
	const width = 4
	total := 0
	for it := 0; it < iterations; it++ {
		lane := make([]int, width)
		lane[0] = it
		total += lane[0]
	}
	return total
}
