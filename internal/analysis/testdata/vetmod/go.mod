module example.com/vetmod

go 1.22
