// Package seededrandbad seeds seededrand violations: top-level v2
// generator calls drawing from the unseedable global.
package seededrandbad

import "math/rand/v2"

// Jitter uses the global generator — violation.
func Jitter() float64 {
	return rand.Float64() // want seededrand
}

// Pick uses the global generator — violation.
func Pick(n int) int {
	return rand.IntN(n) // want seededrand
}
