package seededrandbad

import "math/rand" // want seededrand

// LegacyShuffle uses math/rand v1 — the import itself is the violation.
func LegacyShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
