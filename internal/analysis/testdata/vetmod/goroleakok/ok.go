// Package goroleakok is the negative fixture for the goroleak analyzer:
// every goroutine either signals completion on all paths or never
// completes at all.
package goroleakok

import "sync"

// DeferredDone signals through the WaitGroup on every path.
func DeferredDone(wg *sync.WaitGroup, work func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// DoneChannel closes a done channel when the work finishes.
func DoneChannel(work func()) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	return done
}

// ResultSend delivers the result over a channel; the send is the join.
func ResultSend(compute func() int) <-chan int {
	out := make(chan int, 1)
	go func() { out <- compute() }()
	return out
}

// Forever never terminates, so there is no completion to miss.
func Forever(tick func()) {
	go func() {
		for {
			tick()
		}
	}()
}

// NamedJoined pairs a named launch with visible Add/Wait bookkeeping.
func NamedJoined(wg *sync.WaitGroup) {
	wg.Add(1)
	go worker(wg)
	wg.Wait()
}

func worker(wg *sync.WaitGroup) { defer wg.Done() }
