// Package core is a fixture for the scratchmake analyzer: nnz-scaled
// scratch allocated with make inside loops, which the rule forbids in
// kernel packages.
package core

// ExpandBlocks allocates a fresh accumulator per block — one violation
// per loop body.
func ExpandBlocks(blocks int, nnz int) float64 {
	var sum float64
	for b := 0; b < blocks; b++ {
		acc := make([]float64, nnz) // want: arena
		for i := range acc {
			acc[i] = float64(b + i)
		}
		sum += acc[0]
	}
	return sum
}

// MergeRows allocates a workload buffer inside a range loop.
func MergeRows(rows []int, rowWork int64) int {
	total := 0
	for _, r := range rows {
		scratch := make([]int64, rowWork) // want: arena
		scratch[0] = int64(r)
		total += int(scratch[0])
	}
	return total
}

// NestedScratch hides the make one block deeper; lexical nesting inside
// the loop still counts.
func NestedScratch(n int, intermediate int) int {
	total := 0
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			marker := make([]int, intermediate) // want: arena
			total += len(marker)
		}
	}
	return total
}

// HashTableScratch rebuilds the open-addressing table per row, sized from
// the slot count — RowMerger scratch the arenas pool.
func HashTableScratch(rows int, slots int) int {
	total := 0
	for r := 0; r < rows; r++ {
		table := make([]int, slots) // want: arena
		table[0] = r
		total += table[0]
	}
	return total
}

// PairScratch sizes append buffers from the row's symbolic upper bound
// inside the row loop.
func PairScratch(rows []int, upper int64) float64 {
	var sum float64
	for range rows {
		pairs := make([]float64, int(upper)) // want: arena
		pairs[0] = 1
		sum += pairs[0]
	}
	return sum
}
