// Package core is the clean fixture for the scratchmake analyzer: scratch
// hoisted out of loops, and in-loop makes whose sizes are not nnz-scaled.
package core

// HoistedScratch allocates once before the loop — the sanctioned shape
// when an arena is not available.
func HoistedScratch(blocks int, nnz int) float64 {
	acc := make([]float64, nnz)
	var sum float64
	for b := 0; b < blocks; b++ {
		for i := range acc {
			acc[i] = float64(b + i)
		}
		sum += acc[0]
	}
	return sum
}

// SmallFixedScratch makes a buffer inside the loop, but its size is a
// fixed constant unrelated to nnz — out of the rule's scope.
func SmallFixedScratch(rows int) int {
	const lanes = 8
	total := 0
	for r := 0; r < rows; r++ {
		lane := make([]int, lanes)
		lane[0] = r
		total += lane[0]
	}
	return total
}

// MapScratch makes a map, not a slice; the rule only covers slice makes.
func MapScratch(rows int, nnz int) int {
	total := 0
	for r := 0; r < rows; r++ {
		seen := make(map[int]bool, nnz)
		seen[r] = true
		total += len(seen)
	}
	return total
}

// HoistedHashTable sizes the table once, outside the row loop — the
// sanctioned shape when an arena is not available.
func HoistedHashTable(rows int, slots int) int {
	table := make([]int, slots)
	total := 0
	for r := 0; r < rows; r++ {
		table[0] = r
		total += table[0]
	}
	return total
}

// UnrelatedSizeName makes a buffer inside the loop sized by a name outside
// both vocabularies.
func UnrelatedSizeName(rows int, lanes int) int {
	total := 0
	for r := 0; r < rows; r++ {
		lane := make([]int, lanes)
		lane[0] = r
		total += lane[0]
	}
	return total
}
