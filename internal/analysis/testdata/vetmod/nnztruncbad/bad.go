// Package nnztruncbad seeds nnztrunc violations: narrowing conversions
// applied to nnz-scaled quantities.
package nnztruncbad

// TruncateWork narrows a block workload to int32 — violation.
func TruncateWork(totalWork int64) int32 {
	return int32(totalWork) // want nnztrunc
}

// PackNNZ narrows an nnz count to uint32 — violation.
func PackNNZ(nnz int) uint32 {
	return uint32(nnz) // want nnztrunc
}

// FlopBytes narrows a flop count to uint16 — violation.
func FlopBytes(flops int64) uint16 {
	return uint16(flops / 1024) // want nnztrunc
}
