// Package pkgdocok is documented the conventional way.
package pkgdocok

func Helper() int { return 1 }
