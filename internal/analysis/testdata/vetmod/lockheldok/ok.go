// Package lockheldok is the negative fixture for the lockheld analyzer:
// locks released before blocking, and non-blocking selects under lock.
package lockheldok

import "sync"

var mu sync.Mutex

var ch = make(chan int, 1)

// SendAfterUnlock releases the lock before sending.
func SendAfterUnlock(v int) {
	mu.Lock()
	v++
	mu.Unlock()
	ch <- v
}

// TrySend keeps the lock but the select has a default clause, so it
// cannot block.
func TrySend(v int) bool {
	mu.Lock()
	defer mu.Unlock()
	select {
	case ch <- v:
		return true
	default:
		return false
	}
}

// BranchRelease unlocks on the sending branch before the send; the CFG
// walk must stop at that unlock.
func BranchRelease(v int, urgent bool) {
	mu.Lock()
	if urgent {
		mu.Unlock()
		ch <- v
		return
	}
	mu.Unlock()
}
