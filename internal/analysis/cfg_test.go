package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseFuncBody parses a source fragment and returns the CFG of its
// first function.
func parseFuncBody(t *testing.T, src string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return buildCFG(fd.Body)
		}
	}
	t.Fatal("no function in source")
	return nil
}

// callsIdent reports whether the node's own statement calls the named
// function.
func callsIdent(n *Node, name string) bool {
	found := false
	shallowInspect(n.Stmt, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
				found = true
			}
		}
		return true
	})
	return found
}

func findCall(t *testing.T, g *CFG, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes {
		if callsIdent(n, name) {
			return n
		}
	}
	t.Fatalf("no node calls %s", name)
	return nil
}

// TestCFGEarlyReturn checks the core leak-detection query: an early
// return between acquire and release is a path to exit that skips the
// release.
func TestCFGEarlyReturn(t *testing.T) {
	g := parseFuncBody(t, `package p
func f(fail bool) {
	acquire()
	if fail {
		return
	}
	release()
}`)
	acq := findCall(t, g, "acquire")
	rel := func(n *Node) bool { return callsIdent(n, "release") }
	if !g.exitReachableFrom(acq, rel) {
		t.Fatal("early-return path that skips release() not found")
	}
}

// TestCFGBalanced checks the negative: when every path releases, exit
// is unreachable without passing the release.
func TestCFGBalanced(t *testing.T) {
	g := parseFuncBody(t, `package p
func f(fail bool) {
	acquire()
	if fail {
		release()
		return
	}
	for i := 0; i < 3; i++ {
		step()
	}
	release()
}`)
	acq := findCall(t, g, "acquire")
	rel := func(n *Node) bool { return callsIdent(n, "release") }
	if g.exitReachableFrom(acq, rel) {
		t.Fatal("found a path skipping release() in a balanced function")
	}
}

// TestCFGLabeledBreak checks that a labeled break jumps past the outer
// loop, not just the inner one — the shape the work-stealing executor's
// spawn loop uses.
func TestCFGLabeledBreak(t *testing.T) {
	g := parseFuncBody(t, `package p
func f() {
	acquire()
outer:
	for i := 0; i < 3; i++ {
		for {
			break outer
		}
	}
	release()
}`)
	var brk *Node
	for _, n := range g.Nodes {
		if bs, ok := n.Stmt.(*ast.BranchStmt); ok && bs.Label != nil {
			brk = n
		}
	}
	if brk == nil {
		t.Fatal("no labeled break node")
	}
	if len(brk.Succs) != 1 || !callsIdent(brk.Succs[0], "release") {
		t.Fatalf("break outer should jump to release(), got %v", brk.Succs)
	}
	acq := findCall(t, g, "acquire")
	rel := func(n *Node) bool { return callsIdent(n, "release") }
	if g.exitReachableFrom(acq, rel) {
		t.Fatal("exit reachable without release despite all paths passing it")
	}
}

// TestCFGTerminalCalls checks that panic and os.Exit end their paths:
// a function whose only non-release path panics is balanced.
func TestCFGTerminalCalls(t *testing.T) {
	g := parseFuncBody(t, `package p
func f(bad bool) {
	acquire()
	if bad {
		panic("bad")
	}
	release()
}`)
	acq := findCall(t, g, "acquire")
	rel := func(n *Node) bool { return callsIdent(n, "release") }
	if g.exitReachableFrom(acq, rel) {
		t.Fatal("panic path should not count as reaching exit")
	}
}

// TestCFGSwitchFallthrough checks clause wiring: the fallthrough path
// must flow into the next clause's body.
func TestCFGSwitchFallthrough(t *testing.T) {
	g := parseFuncBody(t, `package p
func f(v int) {
	acquire()
	switch v {
	case 1:
		fallthrough
	case 2:
		release()
	default:
		release()
	}
}`)
	acq := findCall(t, g, "acquire")
	rel := func(n *Node) bool { return callsIdent(n, "release") }
	if g.exitReachableFrom(acq, rel) {
		t.Fatal("every switch path releases; none should reach exit without it")
	}
}
