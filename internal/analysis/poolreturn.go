package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// PoolReturnAnalyzer tracks arena lifetimes: a buffer taken from the
// shared scratch arenas (parallel.GetFloats, GetInts, GetIntsZeroed,
// GetInt64s) must flow back through the matching Put on every path out
// of the function. The scratchmake rule polices how scratch is acquired;
// this one generalizes it to when it is released — the early-return and
// error paths where leaks actually hide. A leaked buffer is not a
// correctness bug (the GC reclaims it) but it silently degrades the pool
// back to per-call allocation, which is exactly the regression the
// arenas exist to prevent.
//
// Releases the CFG walk accepts: a Put call naming the buffer (deferred
// or direct), and a return statement mentioning the buffer (ownership
// transfers to the caller). A buffer stored into a struct field or slice
// element escapes the function's view and is not tracked.
func PoolReturnAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "poolreturn",
		Doc:  "arena buffer acquired but not returned on every path",
		Run:  runPoolReturn,
	}
}

// putFor maps each arena getter to its required releaser.
var putFor = map[string]string{
	"GetFloats":     "PutFloats",
	"GetInts":       "PutInts",
	"GetIntsZeroed": "PutInts",
	"GetInt64s":     "PutInt64s",
}

func runPoolReturn(p *Pass) []Finding {
	var out []Finding
	for _, ff := range p.Facts().Funcs {
		for _, node := range ff.Graph.Nodes {
			as, ok := node.Stmt.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				continue
			}
			for i, rhs := range as.Rhs {
				call, getter := arenaGet(p, rhs)
				if call == nil {
					continue
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" {
					// Stored straight into a field or element: the
					// buffer escapes; lifetime is the container's.
					continue
				}
				if escapes(ff, id.Name, as) {
					continue
				}
				put := putFor[getter]
				release := func(n *Node) bool { return releasesBuffer(n, id.Name, put) }
				if ff.Graph.exitReachableFrom(node, release) {
					out = append(out, Finding{
						Pos:      p.position(call),
						Analyzer: "poolreturn",
						Message: fmt.Sprintf("%q from parallel.%s is not released with parallel.%s on every path; return it before early returns",
							id.Name, getter, put),
					})
				}
			}
		}
	}
	return out
}

// arenaGet unwraps an arena-getter right-hand side — the call itself or
// the `parallel.GetInts(n)[:0]` reslice idiom — returning the call and
// getter name, or nil.
func arenaGet(p *Pass, e ast.Expr) (*ast.CallExpr, string) {
	if sl, ok := e.(*ast.SliceExpr); ok {
		e = sl.X
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	callee := renderCallee(call)
	for getter := range putFor {
		if callee == "parallel."+getter || (p.PkgName == "parallel" && callee == getter) {
			return call, getter
		}
	}
	return nil, ""
}

// escapes reports whether the buffer itself — the slice value, possibly
// resliced, not an element read out of it — is ever assigned into
// something other than a plain identifier (a field, an element, a map
// entry). After that the container owns the lifetime and the rule stops
// tracking. Copying elements out (`dst[i] = buf[k]`) does not escape.
func escapes(ff *FuncFacts, name string, acquire *ast.AssignStmt) bool {
	esc := false
	ast.Inspect(ff.Body, func(n ast.Node) bool {
		if esc {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as == acquire {
			return true
		}
		for i, rhs := range as.Rhs {
			if sl, ok := rhs.(*ast.SliceExpr); ok {
				rhs = sl.X
			}
			id, ok := rhs.(*ast.Ident)
			if !ok || id.Name != name || i >= len(as.Lhs) {
				continue
			}
			if _, ok := as.Lhs[i].(*ast.Ident); !ok {
				esc = true
				return false
			}
		}
		return true
	})
	return esc
}

// releasesBuffer reports whether the node releases the named buffer: a
// Put call (any package qualifier) whose first argument mentions it, or
// a return statement whose result is the buffer itself, possibly
// resliced (ownership transfer to the caller). A return merely computed
// from the buffer, like len(buf), transfers nothing.
func releasesBuffer(n *Node, name, put string) bool {
	if ret, ok := n.Stmt.(*ast.ReturnStmt); ok {
		for _, r := range ret.Results {
			if sl, ok := r.(*ast.SliceExpr); ok {
				r = sl.X
			}
			if id, ok := r.(*ast.Ident); ok && id.Name == name {
				return true
			}
		}
		return false
	}
	found := false
	shallowInspect(n.Stmt, func(x ast.Node) bool {
		if found {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := renderCallee(call)
		if (callee == put || strings.HasSuffix(callee, "."+put)) &&
			len(call.Args) > 0 && mentionsIdent(call.Args[0], name) {
			found = true
			return false
		}
		return true
	})
	return found
}
