// Package analysis implements blockreorg-vet: a project-specific static
// analyzer built only on the standard library's go/ast, go/parser and
// go/types. It encodes the structural rules the type system cannot see —
// the invariants every PR must preserve for the Block Reorganizer's plans
// and sparse formats to stay trustworthy:
//
//   - rawindex: outside the sparse package, the Ptr/Idx/Val storage of a
//     CSR/CSC must not be indexed or sliced directly; the Row/Col accessors
//     and AppendRow/AppendCol builders are the sanctioned surface, so the
//     format contract is enforced in one place.
//   - nnztrunc: nnz arithmetic (workloads, flop counts, intermediate
//     populations — values that scale with nnz(A)·nnz(B)) must stay int or
//     int64; converting it to a narrower integer type silently truncates on
//     large networks.
//   - kernelvalidate: every exported entry point of the kernels package
//     that accepts sparse operands must run the validation gate
//     (checkShapes/checkInputs or an explicit Validate/CheckDeep) before
//     touching them.
//   - seededrand: deterministic simulator and benchmark code must not use
//     math/rand (v1) or the auto-seeded top-level generators of
//     math/rand/v2; randomness flows through explicitly seeded sources.
//   - scratchmake: kernel-package loops (sparse, kernels, core) must not
//     allocate nnz-scaled scratch with make([]...); such buffers come from
//     the internal/parallel arenas, which recycle them across calls and
//     poison them under Paranoid mode.
//   - pkgdoc: every package carries a doc comment; library packages open
//     with "Package <name>" per the godoc convention.
//
// On top of the single-pass AST rules sits a multi-pass framework: each
// Pass lazily computes shared per-function facts (Pass.Facts) — a
// statement-level control-flow graph per function body (including every
// function literal, linked to its encloser), the mutex Lock/Unlock sites
// with rendered receivers, and a call-site table with rendered callees.
// Five path-sensitive rules reason over those facts:
//
//   - lockheld: a mutex held across a channel send or receive, a Wait, a
//     select with no default clause, or a blocking I/O call — the walk
//     covers the CFG region from each Lock to its matching same-receiver
//     Unlock (the rest of the function when the unlock is deferred).
//   - ctxflow: a function that receives a context.Context and then severs
//     it — calling context.Background()/TODO() instead of threading the
//     parameter (the nil-guard rebind is exempt), or never mentioning a
//     named ctx parameter at all.
//   - goroleak: a `go func(){...}()` whose body can reach its end without
//     signaling anyone (no Done, send, or close on some path), so nothing
//     can ever join it; named launches are reported when the launching
//     function shows no Add/Wait machinery.
//   - spanpair: a trace span opened (Span/SpanItems) whose closer is
//     discarded or not invoked on every path to return — the profile's
//     sums-to-wall invariant depends on balanced spans.
//   - poolreturn: an arena buffer (parallel.GetFloats/GetInts/
//     GetIntsZeroed/GetInt64s) not released through the matching Put on
//     every path out of the function; returning the buffer itself hands
//     ownership to the caller and is accepted.
//   - filehandle: a file opened with os.Open/Create/OpenFile/CreateTemp
//     whose Close is unreachable on some path to return; returning the
//     handle or storing it into a container transfers ownership, and the
//     open's own error path is exempt.
//
// A finding can be silenced at one site with a reasoned directive on the
// same line or the line above:
//
//	//vet:ignore rule[,rule] -- reason
//
// The reason is mandatory — a directive without one is itself reported
// (pseudo-rule "vetignore") — and suppressed findings stay counted in the
// driver's summary line, so suppressions remain visible.
//
// The analyzers run over type-checked packages when types resolve and fall
// back to syntactic matching where they do not (the loader stubs imports
// outside the module, so stdlib-heavy expressions may lack type info).
// Test files are not analyzed: tests deliberately build corrupt structures
// to exercise the validators. Vendor trees and files excluded by build
// constraints are skipped the way the go tool skips them.
package analysis
