// Package analysis implements blockreorg-vet: a project-specific static
// analyzer built only on the standard library's go/ast, go/parser and
// go/types. It encodes the structural rules the type system cannot see —
// the invariants every PR must preserve for the Block Reorganizer's plans
// and sparse formats to stay trustworthy:
//
//   - rawindex: outside the sparse package, the Ptr/Idx/Val storage of a
//     CSR/CSC must not be indexed or sliced directly; the Row/Col accessors
//     and AppendRow/AppendCol builders are the sanctioned surface, so the
//     format contract is enforced in one place.
//   - nnztrunc: nnz arithmetic (workloads, flop counts, intermediate
//     populations — values that scale with nnz(A)·nnz(B)) must stay int or
//     int64; converting it to a narrower integer type silently truncates on
//     large networks.
//   - kernelvalidate: every exported entry point of the kernels package
//     that accepts sparse operands must run the validation gate
//     (checkShapes/checkInputs or an explicit Validate/CheckDeep) before
//     touching them.
//   - seededrand: deterministic simulator and benchmark code must not use
//     math/rand (v1) or the auto-seeded top-level generators of
//     math/rand/v2; randomness flows through explicitly seeded sources.
//   - scratchmake: kernel-package loops (sparse, kernels, core) must not
//     allocate nnz-scaled scratch with make([]...); such buffers come from
//     the internal/parallel arenas, which recycle them across calls and
//     poison them under Paranoid mode.
//
// The analyzers run over type-checked packages when types resolve and fall
// back to syntactic matching where they do not (the loader stubs imports
// outside the module, so stdlib-heavy expressions may lack type info).
// Test files are not analyzed: tests deliberately build corrupt structures
// to exercise the validators.
package analysis
