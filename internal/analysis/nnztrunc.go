package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
)

// NNZTruncAnalyzer enforces the nnz-width rule: workload arithmetic —
// anything derived from nnz counts, block-wise workloads, flop totals or
// intermediate populations, which scale with nnz(A)·nnz(B) — must stay int
// or int64. A single int32 conversion silently truncates above 2^31 on the
// large sparse networks this library targets; the paper's Friendster-class
// inputs exceed that by orders of magnitude.
func NNZTruncAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "nnztrunc",
		Doc:  "no narrowing integer conversions in nnz/workload arithmetic",
		Run:  runNNZTrunc,
	}
}

// nnzName matches identifiers that carry nnz-scaled quantities by this
// project's naming conventions.
var nnzName = regexp.MustCompile(`(?i)nnz|work|flops?|population|intermediate`)

func runNNZTrunc(p *Pass) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			target, ok := conversionTarget(p, call)
			if !ok || !isNarrowInt(target) {
				return true
			}
			if !mentionsNNZ(call.Args[0]) || isNarrowSource(p, call.Args[0]) {
				return true
			}
			out = append(out, Finding{
				Pos:      p.position(call),
				Analyzer: "nnztrunc",
				Message: fmt.Sprintf("conversion to %s truncates nnz arithmetic; keep workload counts int or int64",
					target),
			})
			return true
		})
	}
	return out
}

// conversionTarget resolves the type a call expression converts to, or
// ok=false when the call is a plain function call. Falls back to the
// builtin narrow integer names when type information is missing.
func conversionTarget(p *Pass, call *ast.CallExpr) (types.Type, bool) {
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return tv.Type, true
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "int8", "int16", "int32", "uint8", "uint16", "uint32":
			return types.Universe.Lookup(id.Name).Type(), true
		}
	}
	return nil, false
}

// isNarrowInt reports whether t's underlying type is an integer narrower
// than 64 bits (rune and byte aliases included).
func isNarrowInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int8, types.Int16, types.Int32, types.Uint8, types.Uint16, types.Uint32:
		return true
	}
	return false
}

// isNarrowSource reports whether the operand is itself statically known to
// be a narrow integer — widening or same-width conversions of already
// narrow values are not truncations.
func isNarrowSource(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return isNarrowInt(tv.Type)
}

// mentionsNNZ reports whether the expression's subtree references an
// nnz-scaled identifier (variable, field, or method such as NNZ()).
func mentionsNNZ(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && nnzName.MatchString(id.Name) {
			found = true
			return false
		}
		return !found
	})
	return found
}
