package analysis

import (
	"fmt"
	"go/ast"
)

// CtxFlowAnalyzer flags functions that receive a context.Context and
// then sever it. Two shapes are reported:
//
//  1. A function (or a literal nested in one) with a ctx parameter that
//     calls context.Background() or context.TODO() — the fresh root
//     context silently drops the caller's deadline and cancellation.
//     The one legitimate shape, rebinding a nil parameter in place
//     (`if ctx == nil { ctx = context.Background() }`), is exempt: a
//     direct assignment of the fresh context to the parameter itself.
//  2. A named, non-underscore ctx parameter that is never mentioned in
//     the body: the work runs with the deadline ignored. Parameters an
//     interface forces on an implementation should be named _ to state
//     the intent.
func CtxFlowAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc:  "context.Context parameter dropped or its deadline ignored",
		Run:  runCtxFlow,
	}
}

func runCtxFlow(p *Pass) []Finding {
	var out []Finding
	for _, ff := range p.Facts().Funcs {
		names := map[string]bool{}
		for f := ff; f != nil; f = f.Parent {
			for _, n := range ctxParamNames(f) {
				names[n] = true
			}
		}
		if len(names) == 0 {
			continue
		}
		// Shape 1: fresh root contexts inside a ctx-receiving function.
		for _, cs := range ff.Calls {
			if cs.Callee != "context.Background" && cs.Callee != "context.TODO" {
				continue
			}
			if rebindsParam(cs, names) {
				continue
			}
			out = append(out, Finding{
				Pos:      p.position(cs.Call),
				Analyzer: "ctxflow",
				Message:  fmt.Sprintf("%s() discards the caller's context; thread the ctx parameter instead", cs.Callee),
			})
		}
		// Shape 2: own parameters never used anywhere in the body
		// (nested literals included — capturing is using).
		for _, name := range ctxParamNames(ff) {
			if name == "_" || identUsed(ff, name) {
				continue
			}
			out = append(out, Finding{
				Pos:      p.position(ff.Type()),
				Analyzer: "ctxflow",
				Message:  fmt.Sprintf("context parameter %q is never used; its deadline and cancellation are ignored (name it _ if intentional)", name),
			})
		}
	}
	return out
}

// ctxParamNames returns the names of the function's context.Context
// parameters (by syntax: the loader stubs the stdlib, so the type is
// matched as the rendered expression "context.Context").
func ctxParamNames(ff *FuncFacts) []string {
	var names []string
	params := ff.Type().Params
	if params == nil {
		return nil
	}
	for _, field := range params.List {
		if renderExpr(field.Type) != "context.Context" {
			continue
		}
		for _, n := range field.Names {
			names = append(names, n.Name)
		}
	}
	return names
}

// rebindsParam reports whether the call's enclosing statement directly
// assigns the call's result to one of the ctx parameter names — the
// nil-guard idiom. A fresh context merely derived from (WithTimeout,
// WithCancel) does not qualify: there the Background call is nested
// inside another call, not a direct right-hand side.
func rebindsParam(cs CallSite, names map[string]bool) bool {
	as, ok := cs.Node.Stmt.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != len(as.Rhs) {
		return false
	}
	for i, rhs := range as.Rhs {
		if rhs != ast.Expr(cs.Call) {
			continue
		}
		if id, ok := as.Lhs[i].(*ast.Ident); ok && names[id.Name] {
			return true
		}
	}
	return false
}

// identUsed reports whether an identifier with the given name appears
// in the function body outside its own parameter declaration.
func identUsed(ff *FuncFacts, name string) bool {
	used := false
	ast.Inspect(ff.Body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			used = true
			return false
		}
		return true
	})
	return used
}
