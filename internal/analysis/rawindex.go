package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// RawIndexAnalyzer enforces the sparse-format encapsulation rule: outside
// the sparse package, the Ptr/Idx/Val storage of a CSR or CSC must not be
// indexed or sliced directly. Raw indexing is how pointer-array corruption
// (off-by-one chunk boundaries, stale nnz totals) escapes into kernels;
// the Row/Col accessors and the AppendRow/AppendCol builders keep the
// format contract enforced in one audited place.
func RawIndexAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "rawindex",
		Doc:  "no direct indexing or slicing of CSR/CSC Ptr/Idx/Val outside the sparse package",
		Run:  runRawIndex,
	}
}

// storageField reports whether name is one of the guarded storage slices.
func storageField(name string) bool {
	return name == "Ptr" || name == "Idx" || name == "Val"
}

func runRawIndex(p *Pass) []Finding {
	if p.PkgName == "sparse" {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var sel *ast.SelectorExpr
			var verb string
			switch e := n.(type) {
			case *ast.IndexExpr:
				sel, _ = e.X.(*ast.SelectorExpr)
				verb = "indexes"
			case *ast.SliceExpr:
				sel, _ = e.X.(*ast.SelectorExpr)
				verb = "slices"
			default:
				return true
			}
			if sel == nil || !storageField(sel.Sel.Name) {
				return true
			}
			if !isSparseMatrix(p, sel.X) {
				return true
			}
			out = append(out, Finding{
				Pos:      p.position(sel),
				Analyzer: "rawindex",
				Message: fmt.Sprintf("directly %s sparse matrix storage %s; use the Row/Col accessors or AppendRow/AppendCol builders",
					verb, sel.Sel.Name),
			})
			return true
		})
	}
	return out
}

// isSparseMatrix reports whether e's static type is sparse.CSR or
// sparse.CSC (possibly behind a pointer). When the type did not resolve,
// the distinctive Ptr/Idx/Val selector is assumed to be sparse storage —
// erring loud, since no other type in the project carries that trio.
func isSparseMatrix(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil || isInvalid(tv.Type) {
		return true
	}
	t := tv.Type
	if pt, ok := t.(*types.Pointer); ok {
		t = pt.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "CSR" && obj.Name() != "CSC" {
		return false
	}
	return obj.Pkg() != nil && obj.Pkg().Name() == "sparse"
}

// isInvalid reports whether t is the invalid type.
func isInvalid(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.Invalid
}
