package analysis

import (
	"go/ast"
	"go/types"
)

// Facts is the shared per-package fact table the multi-pass framework
// computes once and hands to every CFG-based rule: one FuncFacts per
// function body in the package (declared functions, methods, and every
// function literal, each with its own control-flow graph). Rules that
// only need syntax keep using plain ast.Inspect; rules that reason about
// paths — lock intervals, arena lifetimes, span pairing — share this
// table instead of each rebuilding it.
type Facts struct {
	// Funcs lists every function body in the package in source order.
	// Function literals follow their enclosing function and carry a
	// Parent link to it.
	Funcs []*FuncFacts
}

// FuncFacts is everything the rules know about one function body.
type FuncFacts struct {
	// Decl is the declaration, nil for function literals.
	Decl *ast.FuncDecl
	// Lit is the literal, nil for declared functions.
	Lit *ast.FuncLit
	// Name is the declared name, or "<enclosing>.func" for literals.
	Name string
	// Body is the function body (never nil; bodyless declarations get no
	// FuncFacts).
	Body *ast.BlockStmt
	// Graph is the function's control-flow graph.
	Graph *CFG
	// Mutex lists every sync.Mutex/RWMutex-shaped Lock/Unlock call in
	// the body, in source order.
	Mutex []MutexOp
	// Calls lists every call expression in the body (excluding those
	// inside nested literals), in source order, with a rendered callee.
	Calls []CallSite
	// Parent is the enclosing function's facts for literals, nil for
	// declared functions.
	Parent *FuncFacts
	// File is the file the function lives in (for suppression lookup).
	File *ast.File
}

// Type returns the function's signature type expression.
func (f *FuncFacts) Type() *ast.FuncType {
	if f.Decl != nil {
		return f.Decl.Type
	}
	return f.Lit.Type
}

// MutexOp is one Lock/Unlock-family call on a mutex-shaped receiver.
type MutexOp struct {
	// Call is the call expression itself.
	Call *ast.CallExpr
	// Node is the CFG node of the statement executing the call. For a
	// deferred unlock this is the defer statement's node.
	Node *Node
	// Recv renders the receiver expression ("s.mu", "d.mu") so lock and
	// unlock calls on the same variable can be matched textually.
	Recv string
	// Method is "Lock", "Unlock", "RLock", "RUnlock", or "TryLock".
	Method string
	// Deferred marks ops performed via defer.
	Deferred bool
}

// Write reports whether the op takes or releases the write half.
func (m MutexOp) Write() bool {
	return m.Method == "Lock" || m.Method == "Unlock" || m.Method == "TryLock"
}

// Acquire reports whether the op takes the lock.
func (m MutexOp) Acquire() bool {
	return m.Method == "Lock" || m.Method == "RLock" || m.Method == "TryLock"
}

// CallSite is one call expression with a best-effort rendered callee
// ("wg.Wait", "parallel.PutInts", "close", "done").
type CallSite struct {
	Call *ast.CallExpr
	// Node is the CFG node of the statement performing the call.
	Node *Node
	// Callee is the rendered callee: "pkg.Fn"/"recv.Method" for
	// selector calls, the identifier for direct calls, "" otherwise.
	Callee string
	// Deferred marks calls performed via defer.
	Deferred bool
}

// Facts computes (once) and returns the package's fact table.
func (p *Pass) Facts() *Facts {
	if p.facts != nil {
		return p.facts
	}
	f := &Facts{}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ff := &FuncFacts{
				Decl: fd,
				Name: fd.Name.Name,
				Body: fd.Body,
				File: file,
			}
			f.add(p, ff)
		}
	}
	p.facts = f
	return f
}

// add completes one function's facts and recurses into its literals.
func (f *Facts) add(p *Pass, ff *FuncFacts) {
	ff.Graph = buildCFG(ff.Body)
	f.collectOps(p, ff)
	f.Funcs = append(f.Funcs, ff)
	// Nested literals become their own functions. Walk the body once,
	// pruning literals inside literals (the recursion handles those).
	var lits []*ast.FuncLit
	ast.Inspect(ff.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
			return false
		}
		return true
	})
	for _, lit := range lits {
		child := &FuncFacts{
			Lit:    lit,
			Name:   ff.Name + ".func",
			Body:   lit.Body,
			Parent: ff,
			File:   ff.File,
		}
		f.add(p, child)
	}
}

// collectOps fills ff.Mutex and ff.Calls by scanning each CFG node's own
// statement (nested literals excluded — they get their own facts).
func (f *Facts) collectOps(p *Pass, ff *FuncFacts) {
	for _, node := range ff.Graph.Nodes {
		node := node
		deferred := false
		if _, ok := node.Stmt.(*ast.DeferStmt); ok {
			deferred = true
		}
		shallowInspect(node.Stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			cs := CallSite{Call: call, Node: node, Callee: renderCallee(call), Deferred: deferred}
			ff.Calls = append(ff.Calls, cs)
			if op, ok := p.mutexOp(call); ok {
				op.Node = node
				op.Deferred = deferred
				ff.Mutex = append(ff.Mutex, op)
			}
			return true
		})
	}
}

// renderCallee flattens a callee expression to "a.b.c" / "f" form.
func renderCallee(call *ast.CallExpr) string {
	return renderExpr(call.Fun)
}

// renderExpr renders simple ident/selector chains; anything else is "".
func renderExpr(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := renderExpr(e.X)
		if base == "" {
			return e.Sel.Name
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return renderExpr(e.X)
	case *ast.IndexExpr:
		return renderExpr(e.X)
	case *ast.CallExpr:
		return renderExpr(e.Fun) + "()"
	}
	return ""
}

// mutexOp recognizes Lock-family calls on mutex-shaped receivers. When
// type information resolves the receiver it must be a sync.Mutex or
// sync.RWMutex (possibly embedded); when the type is unknown (stubbed
// imports in fixtures) a receiver whose rendered name mentions "mu" or
// "lock" is accepted, mirroring the project's naming convention.
func (p *Pass) mutexOp(call *ast.CallExpr) (MutexOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return MutexOp{}, false
	}
	method := sel.Sel.Name
	switch method {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock":
	default:
		return MutexOp{}, false
	}
	recv := renderExpr(sel.X)
	if recv == "" {
		return MutexOp{}, false
	}
	if t := p.Info.TypeOf(sel.X); t != nil && !isInvalid(t) {
		if !isMutexType(t) {
			return MutexOp{}, false
		}
	} else if !looksLikeMutexName(recv) {
		return MutexOp{}, false
	}
	return MutexOp{Call: call, Recv: recv, Method: method}, true
}

// isMutexType reports whether t is (a pointer to) a type from package
// sync named Mutex or RWMutex, or a named type embedding one.
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
		}
		t = named.Underlying()
	}
	if st, ok := t.(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			if fld.Embedded() && isMutexType(fld.Type()) {
				return true
			}
		}
	}
	return false
}

// looksLikeMutexName is the syntactic fallback when types are stubbed.
func looksLikeMutexName(recv string) bool {
	last := recv
	if i := lastDot(recv); i >= 0 {
		last = recv[i+1:]
	}
	switch last {
	case "mu", "mtx", "lock", "rw", "rwmu":
		return true
	}
	return false
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}
