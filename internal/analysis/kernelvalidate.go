package analysis

import (
	"fmt"
	"go/ast"
)

// KernelValidateAnalyzer enforces the validation-gate rule: every exported
// entry point of the kernels package that accepts sparse operands must run
// them through the validation gate — checkShapes/checkInputs, or an
// explicit Validate/CheckDeep — before use. Operand validation lives at
// the kernel boundary by design; an entry point that skips it lets a
// malformed matrix reach the expansion kernels, where the failure mode is
// a wrong product, not an error.
func KernelValidateAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "kernelvalidate",
		Doc:  "exported kernels entry points taking sparse operands must call the validation gate",
		Run:  runKernelValidate,
	}
}

// validationGate lists the calls that satisfy the rule.
func validationGate(name string) bool {
	switch name {
	case "checkShapes", "checkInputs", "Validate", "CheckDeep":
		return true
	}
	return false
}

func runKernelValidate(p *Pass) []Finding {
	if p.PkgName != "kernels" {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			if !takesSparseOperand(fn) {
				continue
			}
			if callsValidationGate(fn.Body) {
				continue
			}
			out = append(out, Finding{
				Pos:      p.position(fn.Name),
				Analyzer: "kernelvalidate",
				Message: fmt.Sprintf("exported entry point %s takes sparse operands but never calls the validation gate (checkShapes/checkInputs or Validate/CheckDeep)",
					fn.Name.Name),
			})
		}
	}
	return out
}

// takesSparseOperand reports whether any parameter is a *sparse.CSR or
// *sparse.CSC (matched syntactically, so the rule holds even where the
// loader could not resolve types).
func takesSparseOperand(fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		star, ok := field.Type.(*ast.StarExpr)
		if !ok {
			continue
		}
		sel, ok := star.X.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != "sparse" {
			continue
		}
		if sel.Sel.Name == "CSR" || sel.Sel.Name == "CSC" {
			return true
		}
	}
	return false
}

// callsValidationGate reports whether the body contains a call to one of
// the gate functions, by any receiver.
func callsValidationGate(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if validationGate(fun.Name) {
				found = true
			}
		case *ast.SelectorExpr:
			if validationGate(fun.Sel.Name) {
				found = true
			}
		}
		return !found
	})
	return found
}
