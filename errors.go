package blockreorg

import "errors"

// Typed errors returned by the public API. Servers built on this library
// (cmd/spgemmd) use them to separate client faults — bad operands or
// options, reported as HTTP 4xx — from internal faults, reported as 5xx.
// Match with errors.Is; the concrete messages carry the detail.
var (
	// ErrDimensionMismatch reports operands whose shapes cannot multiply
	// (A is m×k, B must be k×n).
	ErrDimensionMismatch = errors.New("blockreorg: dimension mismatch")
	// ErrInvalidOptions reports an Options value that cannot be executed:
	// nil operands, an unknown GPU, out-of-range tuning parameters, or a
	// supplied Plan that is not bound to the operands.
	ErrInvalidOptions = errors.New("blockreorg: invalid options")
	// ErrUnknownAlgorithm reports an Algorithm name outside Algorithms().
	ErrUnknownAlgorithm = errors.New("blockreorg: unknown algorithm")
)
