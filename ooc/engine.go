package ooc

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/blockreorg/blockreorg"
	"github.com/blockreorg/blockreorg/internal/trace"
	"github.com/blockreorg/blockreorg/sparse"
)

// Options configures an out-of-core engine.
type Options struct {
	// Budget caps the engine's working set in bytes. It sizes the tile
	// grid — a quarter each for the resident A row panel and B column
	// panel, the rest for the result tile and merge buffers — and must be
	// positive. The cap is soft: a single row or column heavier than its
	// share still gets a panel of its own, and the overshoot shows up
	// honestly in Stats.PeakBytes.
	Budget int64
	// Dir hosts the engine's scratch and spill files. Empty creates a
	// private temporary directory that Close removes; a caller-supplied
	// directory is created if missing and left in place (only the
	// engine's own files are deleted).
	Dir string
	// GPU, Workers, Paranoid and Accumulator pass through to the per-tile
	// multiplications; see blockreorg.Options. The result is bit-identical
	// for every setting.
	GPU         blockreorg.GPU
	Workers     int
	Paranoid    bool
	Accumulator string
	// PlanCacheSize bounds the tile plan cache in entries: 0 selects the
	// default (64, enough for an 8×8 grid), negative disables plan reuse.
	PlanCacheSize int
	// Trace optionally attaches a recorder: the engine records ooc.*
	// phase spans (load, reshard, multiply, spill, merge), tile and plan
	// cache counters, byte counters, and the budget/peak gauges, and the
	// inner multiplications record their own kernel phases on the same
	// recorder. Nil disables tracing at zero cost.
	Trace *blockreorg.Trace
}

// Stats reports what an engine has done since New. Counters accumulate
// across calls — an iterative workload's plan hits build up here — while
// Grid reflects the last multiplication.
type Stats struct {
	// Grid is the last multiplication's tile grid: row panels × column
	// panels.
	Grid [2]int
	// Tiles counts tile multiplications; PlanHits and PlanMisses split
	// them by whether a cached plan drove the tile.
	Tiles, PlanHits, PlanMisses int64
	// ReshardReuses counts multiplications that reused the previous
	// B-operand reshard (same *sparse.CSR passed again).
	ReshardReuses int64
	// BytesLoaded counts panel bytes materialized from the operands,
	// scratch and spill files; BytesSpilled counts bytes written to
	// scratch and spill files.
	BytesLoaded, BytesSpilled int64
	// BudgetBytes echoes the configured budget; PeakBytes is the
	// accountant's high-water mark of tracked working-set bytes.
	BudgetBytes, PeakBytes int64
	// Flops accumulates the multiply-add counts of the tile products;
	// SimSeconds the simulated device seconds of the inner
	// multiplications.
	Flops      int64
	SimSeconds float64
	// Wall-clock seconds per engine phase.
	LoadSeconds, ReshardSeconds, MultiplySeconds, SpillSeconds, MergeSeconds float64
}

// Engine is a memory-budgeted out-of-core spGEMM engine. Create one with
// New, run any number of Multiply / MultiplyFiles calls, and Close it to
// drop scratch state. An Engine is not safe for concurrent use; the
// per-tile multiplications inside one call still parallelize across the
// configured workers.
type Engine struct {
	opts   Options
	dir    string
	ownDir bool
	acct   Accountant
	plans  *planCache
	stats  Stats
	seq    int

	// Reshard cache for the in-memory path: passing the same B object to
	// consecutive Multiply calls (M ← M·A iteration) reuses the column
	// reshard on disk instead of rebuilding it.
	bKey   *sparse.CSR
	bCuts  []int64
	bPaths []string
}

// New creates an engine. The budget must be positive.
func New(opts Options) (*Engine, error) {
	if opts.Budget <= 0 {
		return nil, fmt.Errorf("ooc: memory budget must be positive, got %d", opts.Budget)
	}
	if opts.PlanCacheSize == 0 {
		opts.PlanCacheSize = 64
	}
	cacheCap := opts.PlanCacheSize
	if cacheCap < 0 {
		cacheCap = 0
	}
	dir, ownDir := opts.Dir, false
	if dir == "" {
		t, err := os.MkdirTemp("", "ooc-")
		if err != nil {
			return nil, err
		}
		dir, ownDir = t, true
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Engine{
		opts:   opts,
		dir:    dir,
		ownDir: ownDir,
		plans:  newPlanCache(cacheCap),
		stats:  Stats{BudgetBytes: opts.Budget},
	}, nil
}

// Close drops the reshard cache and, for an engine that created its own
// temporary directory, removes it.
func (e *Engine) Close() error {
	e.dropReshard()
	if e.ownDir {
		return os.RemoveAll(e.dir)
	}
	return nil
}

// Stats returns a snapshot of the engine's accumulated statistics.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.PeakBytes = e.acct.Peak()
	return s
}

// shareA and shareB are the byte budgets of one resident A row panel and
// one resident B column panel; the remaining half of the budget covers
// the result tile and the merge working set.
func (e *Engine) shareA() int64 { return e.opts.Budget / 4 }
func (e *Engine) shareB() int64 { return e.opts.Budget / 4 }

// scratchPath returns a fresh file path inside the engine's directory.
func (e *Engine) scratchPath(name string) string {
	e.seq++
	return filepath.Join(e.dir, fmt.Sprintf("%06d-%s", e.seq, name))
}

// dropReshard forgets the cached B reshard and removes its files.
func (e *Engine) dropReshard() {
	for _, p := range e.bPaths {
		os.Remove(p)
	}
	e.bKey, e.bCuts, e.bPaths = nil, nil, nil
}

// Multiply computes C = A×B out of core and returns the assembled result.
// The product is bit-identical to blockreorg.Multiply and sparse.Multiply
// on the same operands, for every budget. The result matrix is the
// caller's; the engine's own working set stays within the budget.
//
// Passing the same b object to consecutive calls reuses its on-disk
// column reshard — the M ← M·A iteration pattern pays the reshard once.
func (e *Engine) Multiply(a, b *sparse.CSR) (*sparse.CSR, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("%w: nil operand", blockreorg.ErrInvalidOptions)
	}
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("%w: cannot multiply %dx%d by %dx%d",
			blockreorg.ErrDimensionMismatch, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if a.Rows == 0 || b.Cols == 0 || a.NNZ() == 0 || b.NNZ() == 0 {
		return sparse.NewCSR(a.Rows, b.Cols), nil
	}
	if e.bKey == b && len(e.bPaths) > 0 {
		e.stats.ReshardReuses++
	} else {
		e.dropReshard()
		cuts, paths, err := e.reshard(memSource{b})
		if err != nil {
			return nil, err
		}
		e.bKey, e.bCuts, e.bPaths = b, cuts, paths
	}
	flops, err := outEstimate(memSource{a}, memSource{b})
	if err != nil {
		return nil, err
	}
	g, err := e.tiles(memSource{a}, flops, e.bCuts, e.bPaths)
	if err != nil {
		g.removeSpills()
		return nil, err
	}
	result := sparse.NewCSR(a.Rows, b.Cols)
	row := 0
	err = e.merge(g, int64(b.Cols), func(_ int, panel *sparse.CSR) error {
		for r := 0; r < panel.Rows; r++ {
			idx, val := panel.Row(r)
			result.AppendRow(row, idx, val)
			row++
		}
		return nil
	})
	g.removeSpills()
	if err != nil {
		return nil, err
	}
	e.finish()
	return result, nil
}

// MultiplyFiles computes C = A×B where both operands are row-axis
// segmented containers on disk and the result streams into a new row-axis
// segmented container at outPath — no matrix is ever whole in memory.
// Row panels align to the stored panel boundaries, so generate the
// operands with a stored panel size no larger than the intended grid's
// (genmat -stream -panel).
func (e *Engine) MultiplyFiles(aPath, bPath, outPath string) error {
	segA, err := sparse.OpenSegmented(aPath)
	if err != nil {
		return err
	}
	defer segA.Close()
	segB, err := sparse.OpenSegmented(bPath)
	if err != nil {
		return err
	}
	defer segB.Close()
	ha, hb := segA.Header(), segB.Header()
	if ha.Axis != sparse.SegRows || hb.Axis != sparse.SegRows {
		return fmt.Errorf("%w: operands must be row-axis segmented containers", blockreorg.ErrInvalidOptions)
	}
	if ha.Cols != hb.Rows {
		return fmt.Errorf("%w: cannot multiply %dx%d by %dx%d",
			blockreorg.ErrDimensionMismatch, ha.Rows, ha.Cols, hb.Rows, hb.Cols)
	}
	if ha.Rows == 0 || hb.Cols == 0 || ha.NNZ == 0 || hb.NNZ == 0 {
		return writeEmptySegmented(outPath, ha.Rows, hb.Cols)
	}
	// The file path does not use the reshard cache: the engine cannot
	// cheaply prove the file unchanged between calls.
	cuts, paths, err := e.reshard(fileSource{segB})
	if err != nil {
		return err
	}
	defer func() {
		for _, p := range paths {
			os.Remove(p)
		}
	}()
	flops, err := outEstimate(fileSource{segA}, fileSource{segB})
	if err != nil {
		return err
	}
	g, err := e.tiles(fileSource{segA}, flops, cuts, paths)
	defer g.removeSpills()
	if err != nil {
		return err
	}
	w, err := sparse.CreateSegmented(outPath, sparse.SegRows, ha.Rows, hb.Cols)
	if err != nil {
		return err
	}
	err = e.merge(g, hb.Cols, func(I int, panel *sparse.CSR) error {
		return w.AppendPanel(g.aCuts[I], g.aCuts[I+1], panel)
	})
	if err != nil {
		w.Discard()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	e.finish()
	return nil
}

// writeEmptySegmented writes an all-zero rows×cols row-axis container.
func writeEmptySegmented(path string, rows, cols int64) error {
	w, err := sparse.CreateSegmented(path, sparse.SegRows, rows, cols)
	if err != nil {
		return err
	}
	if rows > 0 {
		if err := w.AppendPanel(0, rows, sparse.NewCSR(int(rows), int(cols))); err != nil {
			w.Discard()
			return err
		}
	}
	return w.Close()
}

// finish publishes the budget and peak gauges after a successful run.
func (e *Engine) finish() {
	rec := e.opts.Trace
	rec.Set(trace.GaugeOOCBudget, float64(e.opts.Budget))
	rec.Set(trace.GaugeOOCPeakBytes, float64(e.acct.Peak()))
}

// reshard streams B's rows once and scatters them into one row-axis
// scratch container per column panel, with column indices local to the
// panel. The tile loop then loads B[:, J] with a single sequential read.
func (e *Engine) reshard(b source) (cuts []int64, paths []string, err error) {
	rec := e.opts.Trace
	t0 := time.Now()
	rows, _ := b.dims()
	hist, err := b.colNNZ()
	if err != nil {
		return nil, nil, err
	}
	cuts = colCuts(hist, rows, e.shareB())
	nJ := len(cuts) - 1
	writers := make([]*sparse.SegWriter, nJ)
	defer func() {
		if err != nil {
			for _, w := range writers {
				if w != nil {
					w.Discard()
				}
			}
			for _, p := range paths {
				os.Remove(p)
			}
		}
	}()
	for J := 0; J < nJ; J++ {
		path := e.scratchPath(fmt.Sprintf("b-col-%04d.seg", J))
		w, werr := sparse.CreateSegmented(path, sparse.SegRows, rows, cuts[J+1]-cuts[J])
		if werr != nil {
			return nil, nil, werr
		}
		writers[J] = w
		paths = append(paths, path)
	}
	var written int64
	for _, chunk := range ranges(b.rowCuts(e.shareB(), nil, 0)) {
		slab, lerr := b.loadRows(chunk.lo, chunk.hi)
		if lerr != nil {
			return nil, nil, lerr
		}
		cb := csrBytes(slab)
		e.acct.Grab(cb)
		e.noteLoaded(cb)
		for J := 0; J < nJ; J++ {
			part := slab.ColPanel(int(cuts[J]), int(cuts[J+1]))
			pb := csrBytes(part)
			e.acct.Grab(pb)
			aerr := writers[J].AppendPanel(chunk.lo, chunk.hi, part)
			e.acct.Release(pb)
			if aerr != nil {
				e.acct.Release(cb)
				return nil, nil, aerr
			}
			written += pb
		}
		e.acct.Release(cb)
	}
	for _, w := range writers {
		if cerr := w.Close(); cerr != nil {
			return nil, nil, cerr
		}
	}
	e.noteSpilled(written)
	d := time.Since(t0)
	e.stats.ReshardSeconds += d.Seconds()
	rec.Observe(trace.PhaseOOCReshard, written, d)
	return cuts, paths, nil
}

// tileGrid is the spilled intermediate state of one multiplication: the
// panel boundaries plus one spill file per (I, J) tile.
type tileGrid struct {
	aCuts, bCuts []int64
	spill        [][]string
}

// removeSpills deletes every spill file the grid still references.
func (g *tileGrid) removeSpills() {
	if g == nil {
		return
	}
	for _, row := range g.spill {
		for _, p := range row {
			if p != "" {
				os.Remove(p)
			}
		}
	}
}

// outEstimate returns the symbolic per-row product counts of A against B
// — the grid planner's upper bound on output row populations, so A's row
// panels are cut by the size of the tiles they produce, not just the
// bytes they load.
func outEstimate(a, b source) ([]int64, error) {
	bRows, err := b.rowNNZ()
	if err != nil {
		return nil, err
	}
	return a.rowFlops(bRows)
}

// tiles runs the tile loop: for each A row panel, multiply against every
// resharded B column panel and spill the finished tile. Plans are cached
// by the panel pair's structure fingerprints and rebound on reuse.
func (e *Engine) tiles(a source, outWeight []int64, bCuts []int64, bPaths []string) (*tileGrid, error) {
	rec := e.opts.Trace
	aCuts := a.rowCuts(e.shareA(), outWeight, e.opts.Budget/4)
	nI, nJ := len(aCuts)-1, len(bCuts)-1
	e.stats.Grid = [2]int{nI, nJ}
	g := &tileGrid{aCuts: aCuts, bCuts: bCuts, spill: make([][]string, nI)}
	for I := range g.spill {
		g.spill[I] = make([]string, nJ)
	}
	for I := 0; I < nI; I++ {
		t0 := time.Now()
		aPanel, err := a.loadRows(aCuts[I], aCuts[I+1])
		if err != nil {
			return g, err
		}
		ab := csrBytes(aPanel)
		e.acct.Grab(ab)
		e.noteLoaded(ab)
		d := time.Since(t0)
		e.stats.LoadSeconds += d.Seconds()
		rec.Observe(trace.PhaseOOCLoad, ab, d)
		fpA := aPanel.StructureFingerprint()
		for J := 0; J < nJ; J++ {
			if err := e.tile(g, I, J, aPanel, fpA, bPaths[J]); err != nil {
				e.acct.Release(ab)
				return g, err
			}
		}
		e.acct.Release(ab)
	}
	return g, nil
}

// tile multiplies one (A panel, B panel) pair and spills the result.
func (e *Engine) tile(g *tileGrid, I, J int, aPanel *sparse.CSR, fpA uint64, bPath string) error {
	rec := e.opts.Trace
	t0 := time.Now()
	bPanel, err := sparse.ReadSegmentedFile(bPath)
	if err != nil {
		return err
	}
	bb := csrBytes(bPanel)
	e.acct.Grab(bb)
	defer e.acct.Release(bb)
	e.noteLoaded(bb)
	d := time.Since(t0)
	e.stats.LoadSeconds += d.Seconds()
	rec.Observe(trace.PhaseOOCLoad, bb, d)

	t0 = time.Now()
	key := planKey{a: fpA, b: bPanel.StructureFingerprint()}
	mopts := blockreorg.Options{
		GPU:         e.opts.GPU,
		Workers:     e.opts.Workers,
		Paranoid:    e.opts.Paranoid,
		Accumulator: e.opts.Accumulator,
		Trace:       e.opts.Trace,
	}
	reused := false
	if cached := e.plans.get(key); cached != nil {
		// A fingerprint collision surfaces as a Rebind error; fall back to
		// a fresh plan rather than failing the multiplication.
		if bound, rerr := cached.Rebind(aPanel, bPanel); rerr == nil {
			mopts.Plan = bound
			reused = true
		}
	}
	res, err := blockreorg.Multiply(aPanel, bPanel, mopts)
	if err != nil {
		return err
	}
	if reused {
		e.stats.PlanHits++
		rec.Add(trace.CounterOOCPlanHits, 1)
	} else {
		e.stats.PlanMisses++
		rec.Add(trace.CounterOOCPlanMisses, 1)
		e.plans.put(key, res.ReusablePlan())
	}
	e.stats.Tiles++
	e.stats.Flops += res.Flops
	e.stats.SimSeconds += res.TotalSeconds
	rec.Add(trace.CounterOOCTiles, 1)
	tb := csrBytes(res.C)
	e.acct.Grab(tb)
	defer e.acct.Release(tb)
	d = time.Since(t0)
	e.stats.MultiplySeconds += d.Seconds()
	rec.Observe(trace.PhaseOOCMultiply, res.Flops, d)

	t0 = time.Now()
	path := e.scratchPath(fmt.Sprintf("c-%04d-%04d.seg", I, J))
	if err := sparse.WriteSegmentedFile(path, res.C, sparse.SegRows, 0); err != nil {
		return err
	}
	g.spill[I][J] = path
	e.noteSpilled(tb)
	d = time.Since(t0)
	e.stats.SpillSeconds += d.Seconds()
	rec.Observe(trace.PhaseOOCSpill, tb, d)
	return nil
}

// merge reassembles the result row panel by row panel: the I-th panel's
// rows are the concatenation of the spilled tiles (I, 0..nJ) with each
// tile's local columns shifted to its panel start. Tiles are streamed row
// by row, so the resident merge state is one output panel plus the
// streams' pointer arrays. emit receives each finished panel in order.
func (e *Engine) merge(g *tileGrid, cols int64, emit func(I int, panel *sparse.CSR) error) error {
	for I := range g.spill {
		if err := e.mergePanel(g, I, cols, emit); err != nil {
			return err
		}
	}
	return nil
}

// mergePanel builds and emits output row panel I from its spilled tiles.
func (e *Engine) mergePanel(g *tileGrid, I int, cols int64, emit func(int, *sparse.CSR) error) error {
	rec := e.opts.Trace
	t0 := time.Now()
	nJ := len(g.spill[I])
	rowsI := g.aCuts[I+1] - g.aCuts[I]
	segs := make([]*sparse.SegFile, nJ)
	defer func() {
		for _, s := range segs {
			if s != nil {
				s.Close()
			}
		}
	}()
	streams := make([]*sparse.PanelRows, nJ)
	var tileBytes, ptrBytes int64
	for J := 0; J < nJ; J++ {
		s, err := sparse.OpenSegmented(g.spill[I][J])
		if err != nil {
			return err
		}
		segs[J] = s
		h := s.Header()
		if h.Rows != rowsI || h.Cols != g.bCuts[J+1]-g.bCuts[J] {
			return fmt.Errorf("ooc: spill tile (%d,%d) is %dx%d, want %dx%d",
				I, J, h.Rows, h.Cols, rowsI, g.bCuts[J+1]-g.bCuts[J])
		}
		streams[J], err = s.StreamPanel(0)
		if err != nil {
			return err
		}
		tileBytes += csrBytesFor(rowsI, h.NNZ)
		ptrBytes += 8 * (rowsI + 1)
	}
	e.acct.Grab(ptrBytes)
	defer e.acct.Release(ptrBytes)
	e.noteLoaded(tileBytes)

	var panelNNZ int64
	for J := range segs {
		panelNNZ += segs[J].Header().NNZ
	}
	panelBytes := csrBytesFor(rowsI, panelNNZ)
	e.acct.Grab(panelBytes)
	defer e.acct.Release(panelBytes)
	panel := sparse.NewCSR(int(rowsI), int(cols))
	idxBuf := make([]int, 0, 256)
	valBuf := make([]float64, 0, 256)
	for r := 0; r < int(rowsI); r++ {
		idxBuf, valBuf = idxBuf[:0], valBuf[:0]
		for J := 0; J < nJ; J++ {
			idx, val, err := streams[J].NextRow()
			if err != nil {
				return fmt.Errorf("ooc: spill tile (%d,%d) row %d: %v", I, J, r, err)
			}
			off := int(g.bCuts[J])
			for k := range idx {
				idxBuf = append(idxBuf, idx[k]+off)
				valBuf = append(valBuf, val[k])
			}
		}
		panel.AppendRow(r, idxBuf, valBuf)
	}
	if err := emit(I, panel); err != nil {
		return err
	}
	for J := 0; J < nJ; J++ {
		segs[J].Close()
		segs[J] = nil
		os.Remove(g.spill[I][J])
		g.spill[I][J] = ""
	}
	d := time.Since(t0)
	e.stats.MergeSeconds += d.Seconds()
	rec.Observe(trace.PhaseOOCMerge, panelNNZ, d)
	return nil
}

// noteLoaded and noteSpilled bump the byte counters in both the stats and
// the trace recorder.
func (e *Engine) noteLoaded(n int64) {
	e.stats.BytesLoaded += n
	e.opts.Trace.Add(trace.CounterOOCBytesLoaded, n)
}

func (e *Engine) noteSpilled(n int64) {
	e.stats.BytesSpilled += n
	e.opts.Trace.Add(trace.CounterOOCBytesSpill, n)
}

// span is a half-open row range.
type span struct {
	lo, hi int64
}

// ranges converts cut points into the panel ranges they bound.
func ranges(cuts []int64) []span {
	out := make([]span, 0, len(cuts)-1)
	for i := 0; i+1 < len(cuts); i++ {
		out = append(out, span{cuts[i], cuts[i+1]})
	}
	return out
}
