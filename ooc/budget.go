package ooc

import (
	"sync"

	"github.com/blockreorg/blockreorg/sparse"
)

// Accountant tracks the engine's working-set bytes: every panel, tile and
// merge buffer the engine materializes is Grab'd while resident and
// Release'd when dropped. The budget is soft — the accountant never blocks
// or fails an allocation — but the high-water mark it records is the
// engine's honest answer to "how much memory did this run actually hold at
// once", surfaced through Stats.PeakBytes and the ooc_peak_tracked_bytes
// trace gauge so tests and CI can assert it stays under the budget.
type Accountant struct {
	mu   sync.Mutex
	cur  int64
	peak int64
}

// Grab records n bytes becoming resident.
func (a *Accountant) Grab(n int64) {
	a.mu.Lock()
	a.cur += n
	if a.cur > a.peak {
		a.peak = a.cur
	}
	a.mu.Unlock()
}

// Release records n bytes leaving the working set.
func (a *Accountant) Release(n int64) {
	a.mu.Lock()
	a.cur -= n
	a.mu.Unlock()
}

// Current returns the resident tracked bytes.
func (a *Accountant) Current() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cur
}

// Peak returns the high-water mark of tracked bytes.
func (a *Accountant) Peak() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// csrBytes returns the in-memory footprint of a CSR with the given shape:
// the pointer array plus one int and one float64 per entry. This is the
// unit the grid planner sizes panels in and the accountant tracks.
func csrBytesFor(rows, nnz int64) int64 {
	return 8*(rows+1) + 16*nnz
}

// csrBytes returns the in-memory footprint of m.
func csrBytes(m *sparse.CSR) int64 {
	return csrBytesFor(int64(m.Rows), int64(m.NNZ()))
}
