package ooc

import (
	"fmt"
	"io"

	"github.com/blockreorg/blockreorg/sparse"
)

// source abstracts where an operand's rows come from: a resident CSR or a
// segmented container on disk. The engine only ever asks for contiguous
// row ranges sized by the grid planner, so a file-backed operand is never
// materialized whole.
type source interface {
	dims() (rows, cols int64)
	nnz() int64
	// rowCuts partitions the rows into panels of at most share input
	// bytes (csrBytesFor) and, when outWeight is non-nil, at most
	// outShare estimated output bytes (16 per weighted unit plus the
	// pointer array) — outWeight[i] is an upper bound on the output
	// population of row i, so the result tiles and merge panels stay
	// inside their budget slice too. A single row — or, for file
	// sources, a single stored panel — over the share becomes a panel of
	// its own: the budget is a target, and the accountant reports the
	// overshoot honestly.
	rowCuts(share int64, outWeight []int64, outShare int64) []int64
	// rowNNZ returns the per-row entry counts, O(rows) memory.
	rowNNZ() ([]int64, error)
	// rowFlops returns, per row, the number of products the row expands
	// to against a B with the given row populations: Σ bRowNNZ[k] over
	// the row's column indices k. This upper-bounds the output row
	// population — the grid planner's output estimate.
	rowFlops(bRowNNZ []int64) ([]int64, error)
	// loadRows materializes rows [lo, hi) as a (hi−lo)×cols slab with
	// global column indices. File sources require lo and hi to be stored
	// panel boundaries, which rowCuts guarantees.
	loadRows(lo, hi int64) (*sparse.CSR, error)
	// colNNZ returns the per-column entry histogram, the input of the
	// column grid planner. O(cols) memory, one streaming pass.
	colNNZ() ([]int64, error)
}

// memSource serves panels of a resident CSR by copying row/column slices.
type memSource struct {
	m *sparse.CSR
}

func (s memSource) dims() (int64, int64) { return int64(s.m.Rows), int64(s.m.Cols) }
func (s memSource) nnz() int64           { return int64(s.m.NNZ()) }

func (s memSource) rowCuts(share int64, outWeight []int64, outShare int64) []int64 {
	cuts := []int64{0}
	inB, outB := int64(8), int64(8)
	for i := 0; i < s.m.Rows; i++ {
		rin := csrBytesFor(1, int64(s.m.RowNNZ(i))) - 8
		rout := int64(0)
		if outWeight != nil {
			rout = 8 + 16*outWeight[i]
		}
		over := inB+rin > share || (outWeight != nil && outB+rout > outShare)
		if over && int64(i) > cuts[len(cuts)-1] {
			cuts = append(cuts, int64(i))
			inB, outB = 8, 8
		}
		inB += rin
		outB += rout
	}
	if int64(s.m.Rows) > cuts[len(cuts)-1] {
		cuts = append(cuts, int64(s.m.Rows))
	}
	return cuts
}

func (s memSource) loadRows(lo, hi int64) (*sparse.CSR, error) {
	return s.m.RowPanel(int(lo), int(hi)), nil
}

func (s memSource) colNNZ() ([]int64, error) {
	hist := make([]int64, s.m.Cols)
	for i := 0; i < s.m.Rows; i++ {
		idx, _ := s.m.Row(i)
		for _, j := range idx {
			hist[j]++
		}
	}
	return hist, nil
}

func (s memSource) rowNNZ() ([]int64, error) {
	out := make([]int64, s.m.Rows)
	for i := range out {
		out[i] = int64(s.m.RowNNZ(i))
	}
	return out, nil
}

func (s memSource) rowFlops(bRowNNZ []int64) ([]int64, error) {
	out := make([]int64, s.m.Rows)
	for i := 0; i < s.m.Rows; i++ {
		idx, _ := s.m.Row(i)
		var f int64
		for _, k := range idx {
			f += bRowNNZ[k]
		}
		out[i] = f
	}
	return out, nil
}

// fileSource serves panels of a row-axis segmented container. Row cuts
// align to the stored panel boundaries, so a load is a sequence of whole
// stored panels concatenated in memory.
type fileSource struct {
	seg *sparse.SegFile
}

func (s fileSource) dims() (int64, int64) {
	h := s.seg.Header()
	return h.Rows, h.Cols
}

func (s fileSource) nnz() int64 { return s.seg.Header().NNZ }

func (s fileSource) rowCuts(share int64, outWeight []int64, outShare int64) []int64 {
	cuts := []int64{0}
	inB, outB := int64(8), int64(8)
	for _, p := range s.seg.Panels() {
		pin := csrBytesFor(p.End-p.Start, p.NNZ) - 8
		pout := int64(0)
		if outWeight != nil {
			pout = 8 * (p.End - p.Start)
			for _, w := range outWeight[p.Start:p.End] {
				pout += 16 * w
			}
		}
		over := inB+pin > share || (outWeight != nil && outB+pout > outShare)
		if over && p.Start > cuts[len(cuts)-1] {
			cuts = append(cuts, p.Start)
			inB, outB = 8, 8
		}
		inB += pin
		outB += pout
	}
	h := s.seg.Header()
	if h.Rows > cuts[len(cuts)-1] {
		cuts = append(cuts, h.Rows)
	}
	return cuts
}

func (s fileSource) loadRows(lo, hi int64) (*sparse.CSR, error) {
	h := s.seg.Header()
	out := sparse.NewCSR(int(hi-lo), int(h.Cols))
	row := 0
	for i, p := range s.seg.Panels() {
		if p.End <= lo || p.Start >= hi {
			continue
		}
		if p.Start < lo || p.End > hi {
			return nil, fmt.Errorf("ooc: load [%d,%d) does not align to stored panel [%d,%d)",
				lo, hi, p.Start, p.End)
		}
		pan, err := s.seg.LoadPanel(i)
		if err != nil {
			return nil, err
		}
		for r := 0; r < pan.Rows; r++ {
			idx, val := pan.Row(r)
			out.AppendRow(row, idx, val)
			row++
		}
	}
	if int64(row) != hi-lo {
		return nil, fmt.Errorf("ooc: stored panels cover %d of %d requested rows", row, hi-lo)
	}
	return out, nil
}

func (s fileSource) rowNNZ() ([]int64, error) {
	h := s.seg.Header()
	out := make([]int64, 0, h.Rows)
	for i, p := range s.seg.Panels() {
		pr, err := s.seg.StreamPanel(i)
		if err != nil {
			return nil, err
		}
		for r := 0; int64(r) < p.End-p.Start; r++ {
			out = append(out, int64(pr.RowNNZ(r)))
		}
	}
	return out, nil
}

func (s fileSource) rowFlops(bRowNNZ []int64) ([]int64, error) {
	h := s.seg.Header()
	out := make([]int64, 0, h.Rows)
	for i := range s.seg.Panels() {
		pr, err := s.seg.StreamPanel(i)
		if err != nil {
			return nil, err
		}
		for {
			idx, _, err := pr.NextRow()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			var f int64
			for _, k := range idx {
				if k < 0 || k >= len(bRowNNZ) {
					return nil, fmt.Errorf("ooc: column %d out of range [0,%d)", k, len(bRowNNZ))
				}
				f += bRowNNZ[k]
			}
			out = append(out, f)
		}
	}
	return out, nil
}

func (s fileSource) colNNZ() ([]int64, error) {
	h := s.seg.Header()
	hist := make([]int64, h.Cols)
	for i := range s.seg.Panels() {
		pr, err := s.seg.StreamPanel(i)
		if err != nil {
			return nil, err
		}
		for {
			idx, _, err := pr.NextRow()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			for _, j := range idx {
				if j < 0 || int64(j) >= h.Cols {
					return nil, fmt.Errorf("ooc: column %d out of range [0,%d)", j, h.Cols)
				}
				hist[j]++
			}
		}
	}
	return hist, nil
}

// colCuts partitions the columns into panels of at most share bytes each,
// charging every panel the mandatory pointer-array overhead of one
// rows-tall CSR slab plus 16 bytes per entry. A single column heavier than
// the share gets a panel of its own.
func colCuts(hist []int64, rows, share int64) []int64 {
	base := csrBytesFor(rows, 0)
	cuts := []int64{0}
	bytes := base
	for j := range hist {
		cb := 16 * hist[j]
		if bytes+cb > share && int64(j) > cuts[len(cuts)-1] {
			cuts = append(cuts, int64(j))
			bytes = base
		}
		bytes += cb
	}
	if int64(len(hist)) > cuts[len(cuts)-1] {
		cuts = append(cuts, int64(len(hist)))
	}
	return cuts
}
