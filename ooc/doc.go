// Package ooc is the out-of-core spGEMM engine: memory-budgeted streaming
// multiplication of sparse matrices whose CSR representations exceed
// physical RAM.
//
// The engine partitions A into row panels and B into column panels sized
// by a byte Budget, streams panel pairs through the in-memory planned
// multiply (blockreorg.NewPlan / Plan.Rebind, with a tile-pair-structure-
// keyed plan cache so iterative workloads reuse tile preprocessing across
// iterations), spills each finished C tile to a spill directory, and
// finally merges the tiles row-wise into the result — streamed back to
// disk in the segmented container format, or assembled in memory when the
// caller wants a *sparse.CSR.
//
// # Bit-identity
//
// A tile C[I,J] = A[I,:]×B[:,J] is a complete product — no partial sums
// cross tiles — and the planned engine sums every output entry's
// intermediate products in the canonical order (ascending k, B-row order
// within one k; see core.Plan.ExecuteOn). Column-slicing B drops
// contributions without reordering the survivors, so the reassembled
// out-of-core product is bit-identical to the in-memory blockreorg
// product and to sparse.Multiply for every budget and tile grid. Tests
// assert Equal(·, 0), not approximate agreement.
//
// # Memory accounting
//
// Every panel, tile and merge buffer the engine materializes is tracked
// by an Accountant; its high-water mark is surfaced through Stats and the
// ooc_peak_tracked_bytes trace gauge, and stays under the configured
// budget for any feasible grid. The budget is split into quarters: one
// for the resident A row panel, one for the resident B column panel, and
// two for the result tile plus merge working set. Operands or results the
// caller holds in memory are the caller's, not the engine's — the
// accountant tracks the engine's working set, which is the quantity a
// bigger-than-RAM run needs bounded.
package ooc
