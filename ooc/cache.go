package ooc

import (
	blockreorg "github.com/blockreorg/blockreorg"
)

// planKey identifies a tile pair by the structure fingerprints of its
// operand panels. Two tiles with the same key share every preprocessing
// decision, so one plan (rebound per tile) serves them all — the
// out-of-core analogue of the serving layer's plan cache, and what makes
// iterative workloads (PowerIterate, MCL) pay the tile preprocessing only
// on their first pass.
type planKey struct {
	a, b uint64
}

// planCache is a bounded fingerprint-keyed cache of reusable tile plans
// with insertion-ordered eviction: when full, the oldest entry goes. Tile
// grids are visited in a fixed order every iteration, so insertion order
// is visit order and the working set stays resident as long as the
// capacity covers the grid.
type planCache struct {
	cap   int
	plans map[planKey]*blockreorg.Plan
	order []planKey
}

func newPlanCache(capacity int) *planCache {
	return &planCache{cap: capacity, plans: make(map[planKey]*blockreorg.Plan, capacity)}
}

func (c *planCache) get(k planKey) *blockreorg.Plan {
	return c.plans[k]
}

func (c *planCache) put(k planKey, p *blockreorg.Plan) {
	if c.cap <= 0 || p == nil {
		return
	}
	if _, ok := c.plans[k]; ok {
		c.plans[k] = p
		return
	}
	if len(c.order) >= c.cap {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.plans, oldest)
	}
	c.plans[k] = p
	c.order = append(c.order, k)
}

func (c *planCache) len() int { return len(c.plans) }
