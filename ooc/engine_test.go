package ooc

import (
	"errors"
	"math/rand/v2"
	"path/filepath"
	"testing"

	"github.com/blockreorg/blockreorg"
	"github.com/blockreorg/blockreorg/internal/trace"
	"github.com/blockreorg/blockreorg/sparse"
	"github.com/blockreorg/blockreorg/sparse/rmat"
)

// fullCSR returns an n×n matrix with every entry stored — the structure
// iterative workloads converge to, and the one that keeps tile
// fingerprints stable across iterations.
func fullCSR(rng *rand.Rand, n int) *sparse.CSR {
	m := sparse.NewCSR(n, n)
	idx := make([]int, n)
	val := make([]float64, n)
	for j := 0; j < n; j++ {
		idx[j] = j
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			val[j] = rng.Float64()*2 - 1
		}
		m.AppendRow(i, idx, val)
	}
	return m
}

func testOperands(t *testing.T) (a, b, want *sparse.CSR) {
	t.Helper()
	a, err := rmat.PowerLaw(1500, 6000, 2.05, 41)
	if err != nil {
		t.Fatal(err)
	}
	b, err = rmat.Generate(1500, 6000, rmat.Default, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := blockreorg.Multiply(a, b, blockreorg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return a, b, res.C
}

// The tentpole contract: for any budget the out-of-core product is
// bit-identical to the in-memory engine (itself bit-identical to
// sparse.Multiply), and the engine's tracked working set stays under the
// budget. The tightest budget must force a real grid with spilled tiles
// merged k-way.
func TestMultiplyBitIdenticalAcrossBudgets(t *testing.T) {
	a, b, want := testOperands(t)
	for _, tc := range []struct {
		name    string
		budget  int64
		minGrid int
	}{
		{"one-tile", 64 << 20, 1},
		{"few-tiles", 400 << 10, 2},
		{"grid-4x4", 100 << 10, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e, err := New(Options{Budget: tc.budget, Dir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			got, err := e.Multiply(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if err := got.Validate(); err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want, 0) {
				t.Fatal("out-of-core product differs bitwise from the in-memory engine")
			}
			st := e.Stats()
			if st.Grid[0] < tc.minGrid || st.Grid[1] < tc.minGrid {
				t.Fatalf("budget %d produced grid %dx%d, want at least %dx%d",
					tc.budget, st.Grid[0], st.Grid[1], tc.minGrid, tc.minGrid)
			}
			if st.PeakBytes > tc.budget {
				t.Fatalf("peak tracked bytes %d over budget %d", st.PeakBytes, tc.budget)
			}
			if st.Tiles != int64(st.Grid[0]*st.Grid[1]) {
				t.Fatalf("ran %d tiles for a %dx%d grid", st.Tiles, st.Grid[0], st.Grid[1])
			}
			if tc.minGrid > 1 && st.BytesSpilled == 0 {
				t.Fatal("gridded run spilled nothing")
			}
		})
	}
}

// Random small operands across many seeds: the bit-identity must hold for
// arbitrary structures, not just the skewed generators.
func TestMultiplyBitIdenticalRandom(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewPCG(seed, 99))
		n := 30 + rng.IntN(60)
		a := randomCSR(rng, n, n+7, 0.15)
		b := randomCSR(rng, n+7, n+3, 0.15)
		want, err := sparse.Multiply(a, b)
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(Options{Budget: 16 << 10, Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Multiply(a, b)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !got.Equal(want, 0) {
			t.Fatalf("seed %d: out-of-core product differs from sparse.Multiply", seed)
		}
		e.Close()
	}
}

func randomCSR(rng *rand.Rand, rows, cols int, density float64) *sparse.CSR {
	m := sparse.NewCSR(rows, cols)
	var idx []int
	var val []float64
	for i := 0; i < rows; i++ {
		idx, val = idx[:0], val[:0]
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				idx = append(idx, j)
				val = append(val, rng.Float64()*2-1)
			}
		}
		m.AppendRow(i, idx, val)
	}
	return m
}

// The file-to-file path: both operands live in segmented containers, the
// result streams into one, and nothing but panels is ever resident. The
// assembled result must match the in-memory product bitwise.
func TestMultiplyFilesBitIdentical(t *testing.T) {
	a, b, want := testOperands(t)
	dir := t.TempDir()
	aPath := filepath.Join(dir, "a.seg")
	bPath := filepath.Join(dir, "b.seg")
	outPath := filepath.Join(dir, "c.seg")
	// Stored panels bound the grid planner's cut granularity (a file cut
	// must land on a stored panel boundary), so keep them fine relative
	// to the budget's panel share.
	if err := sparse.WriteSegmentedFile(aPath, a, sparse.SegRows, 32); err != nil {
		t.Fatal(err)
	}
	if err := sparse.WriteSegmentedFile(bPath, b, sparse.SegRows, 32); err != nil {
		t.Fatal(err)
	}
	e, err := New(Options{Budget: 200 << 10, Dir: filepath.Join(dir, "scratch")})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.MultiplyFiles(aPath, bPath, outPath); err != nil {
		t.Fatal(err)
	}
	got, err := sparse.ReadSegmentedFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 0) {
		t.Fatal("file-to-file product differs bitwise from the in-memory engine")
	}
	st := e.Stats()
	if st.Grid[0] < 2 || st.Grid[1] < 2 {
		t.Fatalf("grid %dx%d, want a real tiling", st.Grid[0], st.Grid[1])
	}
	if st.PeakBytes > 200<<10 {
		t.Fatalf("peak tracked bytes %d over budget", st.PeakBytes)
	}
}

// Iterating M ← M·B with a fixed B must pay reshard and tile planning
// once: every later iteration rebinds the cached plans (one hit per tile)
// and reuses the on-disk reshard.
func TestPlanAndReshardReuseAcrossIterations(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	m := fullCSR(rng, 48)
	b := fullCSR(rng, 48)
	e, err := New(Options{Budget: 48 << 10, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	const iters = 4
	for k := 0; k < iters; k++ {
		want, err := blockreorg.Multiply(m, b, blockreorg.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Multiply(m, b)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want.C, 0) {
			t.Fatalf("iteration %d differs from the in-memory engine", k)
		}
		m = got
	}
	st := e.Stats()
	tilesPerIter := int64(st.Grid[0] * st.Grid[1])
	if tilesPerIter < 4 {
		t.Fatalf("grid %dx%d too small to exercise reuse", st.Grid[0], st.Grid[1])
	}
	// Misses happen only on the first iteration, and only once per
	// distinct tile structure (structurally identical tiles share a plan
	// immediately); everything else rebinds a cached plan.
	if st.PlanMisses == 0 || st.PlanMisses > tilesPerIter {
		t.Fatalf("plan misses %d for %d tiles per iteration", st.PlanMisses, tilesPerIter)
	}
	if want := tilesPerIter * (iters - 1); st.PlanHits < want {
		t.Fatalf("plan hits %d, want at least %d", st.PlanHits, want)
	}
	if st.PlanHits+st.PlanMisses != st.Tiles {
		t.Fatalf("hits %d + misses %d != tiles %d", st.PlanHits, st.PlanMisses, st.Tiles)
	}
	if st.ReshardReuses != iters-1 {
		t.Fatalf("reshard reuses %d, want %d", st.ReshardReuses, iters-1)
	}
}

// The engine's trace output: ooc phases appear as spans, the counters add
// up against Stats, and the gauges publish budget and peak.
func TestTraceCountersAndGauges(t *testing.T) {
	a, b, _ := testOperands(t)
	rec := blockreorg.NewTrace()
	e, err := New(Options{Budget: 1 << 20, Dir: t.TempDir(), Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Multiply(a, b); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	p := rec.Profile()
	if p.Counter(trace.CounterOOCTiles) != st.Tiles {
		t.Fatalf("tile counter %d, stats %d", p.Counter(trace.CounterOOCTiles), st.Tiles)
	}
	if p.Counter(trace.CounterOOCBytesLoaded) != st.BytesLoaded ||
		p.Counter(trace.CounterOOCBytesSpill) != st.BytesSpilled {
		t.Fatal("byte counters disagree with stats")
	}
	if p.Counter(trace.CounterOOCPlanMisses) != st.PlanMisses {
		t.Fatal("plan miss counter disagrees with stats")
	}
	if p.Gauges[trace.GaugeOOCBudget] != float64(1<<20) {
		t.Fatalf("budget gauge %v", p.Gauges[trace.GaugeOOCBudget])
	}
	if p.Gauges[trace.GaugeOOCPeakBytes] != float64(st.PeakBytes) {
		t.Fatalf("peak gauge %v, stats %d", p.Gauges[trace.GaugeOOCPeakBytes], st.PeakBytes)
	}
	phases := map[string]bool{}
	for _, s := range p.Phases {
		phases[s.Phase] = true
	}
	for _, ph := range []trace.Phase{trace.PhaseOOCLoad, trace.PhaseOOCReshard,
		trace.PhaseOOCMultiply, trace.PhaseOOCSpill, trace.PhaseOOCMerge} {
		if !phases[string(ph)] {
			t.Fatalf("phase %s missing from profile", ph)
		}
	}
}

func TestEngineRejectsBadRequests(t *testing.T) {
	if _, err := New(Options{Budget: 0}); err == nil {
		t.Fatal("zero budget accepted")
	}
	e, err := New(Options{Budget: 1 << 20, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Multiply(nil, sparse.NewCSR(2, 2)); !errors.Is(err, blockreorg.ErrInvalidOptions) {
		t.Fatalf("nil operand: %v", err)
	}
	if _, err := e.Multiply(sparse.NewCSR(2, 3), sparse.NewCSR(2, 3)); !errors.Is(err, blockreorg.ErrDimensionMismatch) {
		t.Fatalf("dimension mismatch: %v", err)
	}
	if err := e.MultiplyFiles(filepath.Join(t.TempDir(), "missing.seg"), "x", "y"); err == nil {
		t.Fatal("missing operand file accepted")
	}
}

func TestDegenerateOperands(t *testing.T) {
	e, err := New(Options{Budget: 1 << 20, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	got, err := e.Multiply(sparse.NewCSR(5, 4), sparse.NewCSR(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != 5 || got.Cols != 3 || got.NNZ() != 0 {
		t.Fatalf("empty product wrong: %dx%d nnz %d", got.Rows, got.Cols, got.NNZ())
	}
	dir := t.TempDir()
	aPath := filepath.Join(dir, "a.seg")
	bPath := filepath.Join(dir, "b.seg")
	outPath := filepath.Join(dir, "c.seg")
	if err := sparse.WriteSegmentedFile(aPath, sparse.NewCSR(5, 4), sparse.SegRows, 0); err != nil {
		t.Fatal(err)
	}
	if err := sparse.WriteSegmentedFile(bPath, sparse.NewCSR(4, 3), sparse.SegRows, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.MultiplyFiles(aPath, bPath, outPath); err != nil {
		t.Fatal(err)
	}
	out, err := sparse.ReadSegmentedFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows != 5 || out.Cols != 3 || out.NNZ() != 0 {
		t.Fatal("empty file product wrong")
	}
}

// The accountant is the budget's book-keeper: balanced grabs and a peak
// that never understates the concurrent maximum.
func TestAccountant(t *testing.T) {
	var a Accountant
	a.Grab(100)
	a.Grab(50)
	if a.Current() != 150 || a.Peak() != 150 {
		t.Fatalf("current %d peak %d", a.Current(), a.Peak())
	}
	a.Release(100)
	a.Grab(20)
	if a.Current() != 70 || a.Peak() != 150 {
		t.Fatalf("current %d peak %d after release", a.Current(), a.Peak())
	}
}

// After every successful multiplication the accountant must be back to
// zero — anything else is a leak in the engine's grab/release pairing.
func TestAccountingBalanced(t *testing.T) {
	a, b, _ := testOperands(t)
	e, err := New(Options{Budget: 300 << 10, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Multiply(a, b); err != nil {
		t.Fatal(err)
	}
	if cur := e.acct.Current(); cur != 0 {
		t.Fatalf("tracked bytes leaked: %d still resident", cur)
	}
}

func TestPlanCacheEviction(t *testing.T) {
	c := newPlanCache(2)
	p := &blockreorg.Plan{}
	c.put(planKey{1, 1}, p)
	c.put(planKey{2, 2}, p)
	c.put(planKey{3, 3}, p)
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, cap 2", c.len())
	}
	if c.get(planKey{1, 1}) != nil {
		t.Fatal("oldest entry not evicted")
	}
	if c.get(planKey{3, 3}) == nil {
		t.Fatal("newest entry missing")
	}
}

func TestColCuts(t *testing.T) {
	// 4 columns of 10 entries each, 3 rows: base = 8*4 = 32 bytes, each
	// column adds 160 bytes. share 200 → one column per panel.
	cuts := colCuts([]int64{10, 10, 10, 10}, 3, 200)
	if len(cuts) != 5 {
		t.Fatalf("cuts %v, want one column per panel", cuts)
	}
	// A huge share keeps everything in one panel.
	cuts = colCuts([]int64{10, 10, 10, 10}, 3, 1<<20)
	if len(cuts) != 2 || cuts[1] != 4 {
		t.Fatalf("cuts %v, want a single panel", cuts)
	}
	// A single column over the share still gets a panel of its own.
	cuts = colCuts([]int64{1000, 1, 1}, 3, 100)
	if cuts[1] != 1 {
		t.Fatalf("cuts %v, want the heavy column isolated", cuts)
	}
}
