package blockreorg

import (
	"math"
	"os"
	"testing"

	"github.com/blockreorg/blockreorg/sparse"
	"github.com/blockreorg/blockreorg/sparse/rmat"
)

// TestParanoidAllAlgorithms is the sanitizer acceptance run: every
// algorithm multiplies an R-MAT input with the full deep-check layer on —
// operand CheckDeep, plan verification, and per-grid kernel checks — and
// must produce the reference product with no sanitizer complaint.
func TestParanoidAllAlgorithms(t *testing.T) {
	a, err := rmat.PowerLaw(1500, 18000, 2.05, 57)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sparse.Multiply(a, a)
	if err != nil {
		t.Fatal(err)
	}
	algs := Algorithms()
	if len(algs) != 7 {
		t.Fatalf("expected 7 algorithms, got %d", len(algs))
	}
	for _, alg := range algs {
		res, err := Multiply(a, a, Options{Algorithm: alg, Paranoid: true})
		if err != nil {
			t.Errorf("%s with Paranoid: %v", alg, err)
			continue
		}
		if !res.C.Equal(want, 1e-9) {
			t.Errorf("%s with Paranoid: product differs from reference", alg)
		}
	}
}

// TestParanoidRejectsCorruptOperand proves the flag has teeth: an operand
// whose values are corrupted in a way shallow validation cannot see is
// accepted without Paranoid and rejected with it.
func TestParanoidRejectsCorruptOperand(t *testing.T) {
	a, err := rmat.PowerLaw(300, 2500, 2.2, 58)
	if err != nil {
		t.Fatal(err)
	}
	a.Val[0] = math.NaN()
	if os.Getenv("BLOCKREORG_PARANOID") == "" {
		// With the environment override every run is paranoid, so the
		// accepted-without-Paranoid half only holds without it.
		if _, err := Multiply(a, a, Options{}); err != nil {
			t.Fatalf("non-paranoid run should not inspect values: %v", err)
		}
	}
	if _, err := Multiply(a, a, Options{Paranoid: true}); err == nil {
		t.Fatal("Paranoid run accepted a NaN operand")
	}
}
