package blockreorg

import (
	"math"
	"os"
	"testing"

	"github.com/blockreorg/blockreorg/internal/parallel"
	"github.com/blockreorg/blockreorg/sparse"
	"github.com/blockreorg/blockreorg/sparse/rmat"
)

// TestParanoidAllAlgorithms is the sanitizer acceptance run: every
// algorithm multiplies an R-MAT input with the full deep-check layer on —
// operand CheckDeep, plan verification, and per-grid kernel checks — and
// must produce the reference product with no sanitizer complaint.
func TestParanoidAllAlgorithms(t *testing.T) {
	a, err := rmat.PowerLaw(1500, 18000, 2.05, 57)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sparse.Multiply(a, a)
	if err != nil {
		t.Fatal(err)
	}
	algs := Algorithms()
	if len(algs) != 7 {
		t.Fatalf("expected 7 algorithms, got %d", len(algs))
	}
	for _, alg := range algs {
		res, err := Multiply(a, a, Options{Algorithm: alg, Paranoid: true})
		if err != nil {
			t.Errorf("%s with Paranoid: %v", alg, err)
			continue
		}
		if !res.C.Equal(want, 1e-9) {
			t.Errorf("%s with Paranoid: product differs from reference", alg)
		}
	}
}

// TestParanoidPoisonedArenaReuse closes the loop on buffer recycling:
// with poisoning forced on, every buffer returned to the arenas is filled
// with NaN / out-of-range sentinels before a later Get can hand it out
// again. Repeated multiplies therefore run almost entirely on recycled,
// poisoned scratch — if any kernel read a recycled value it did not
// initialize, the NaN would propagate into the product or the sentinel
// index would corrupt the structure, and the comparison (or Paranoid's
// deep checks) would catch it.
func TestParanoidPoisonedArenaReuse(t *testing.T) {
	parallel.SetPoison(true)
	defer parallel.SetPoison(false)

	a, err := rmat.PowerLaw(1200, 15000, 2.05, 59)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sparse.Multiply(a, a)
	if err != nil {
		t.Fatal(err)
	}
	// A multi-worker executor forces the chunked Gustavson engine, whose
	// accumulators, markers and index buffers all cycle through the
	// arenas.
	ex := parallel.NewExecutor(4)
	for iter := 0; iter < 3; iter++ {
		got, err := sparse.MultiplyOn(a, a, ex)
		if err != nil {
			t.Fatalf("iteration %d: %v", iter, err)
		}
		if !got.Equal(want, 0) {
			t.Fatalf("iteration %d: poisoned-arena MultiplyOn diverged", iter)
		}
		res, err := Multiply(a, a, Options{Paranoid: true})
		if err != nil {
			t.Fatalf("iteration %d: Reorganizer with Paranoid: %v", iter, err)
		}
		if !res.C.Equal(want, 1e-9) {
			t.Fatalf("iteration %d: poisoned-arena Reorganizer diverged", iter)
		}
	}
}

// TestParanoidRejectsCorruptOperand proves the flag has teeth: an operand
// whose values are corrupted in a way shallow validation cannot see is
// accepted without Paranoid and rejected with it.
func TestParanoidRejectsCorruptOperand(t *testing.T) {
	a, err := rmat.PowerLaw(300, 2500, 2.2, 58)
	if err != nil {
		t.Fatal(err)
	}
	a.Val[0] = math.NaN()
	if os.Getenv("BLOCKREORG_PARANOID") == "" {
		// With the environment override every run is paranoid, so the
		// accepted-without-Paranoid half only holds without it.
		if _, err := Multiply(a, a, Options{}); err != nil {
			t.Fatalf("non-paranoid run should not inspect values: %v", err)
		}
	}
	if _, err := Multiply(a, a, Options{Paranoid: true}); err == nil {
		t.Fatal("Paranoid run accepted a NaN operand")
	}
}
